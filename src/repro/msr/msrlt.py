"""The MSR Lookup Table (MSRLT).

The paper §3.1: "At runtime, the MSRLT data structure is created in
process memory space to keep track of memory blocks.  It also provides
machine-independent identification to the memory blocks and supports
memory block search during data collection and restoration operations.
The MSRLT works as a mapping table which supports address translation
between the machine-specific and machine-independent memory address."

A *memory block* is one MSR vertex: a global variable, a local variable
of some activation record, or one heap allocation.  Its machine-
independent :class:`LogicalId` is

- ``(GLOBAL, index, 0)`` — the global's declaration index,
- ``(STACK, frame_depth, var_index)`` — position in the call chain and
  the variable's slot in the function's flat variable list,
- ``(HEAP, serial, 0)`` — the allocation serial number on the *source*
  host (the restorer maps source serials to fresh destination blocks).

All three are identical on every architecture for the same program at
the same execution point, which is what makes them transportable.

Address→block search uses a sorted-address array per segment with binary
search — O(log n) per pointer lookup, giving the paper's O(n·log n)
total search complexity for collection (§4.2).  Heap registrations are
typically in increasing address order (bump allocation), so the insort
is amortized O(1); logical-id→block lookup is a dict, giving the O(n)
total MSRLT *update* complexity of restoration.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.clang.ctypes import CType, TypeLayout

__all__ = ["BlockKind", "LogicalId", "MemoryBlock", "MSRLT", "MSRLTError"]


class MSRLTError(Exception):
    """Lookup failure — e.g. a pointer into unregistered memory."""


class BlockKind:
    """Logical-id kind codes (stable wire values)."""

    GLOBAL = 0
    STACK = 1
    HEAP = 2

    NAMES = {0: "global", 1: "stack", 2: "heap"}


#: (kind, a, b) — see module docstring
LogicalId = tuple


@dataclass(slots=True)
class MemoryBlock:
    """One MSR vertex: a typed, contiguous run of simulated memory."""

    addr: int
    elem_type: CType
    count: int
    size: int  # bytes on this architecture
    logical: LogicalId
    #: source-level name, for diagnostics and the MSR graph model
    name: str = ""

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        # one-past-the-end addresses belong to this block (C pointer rules)
        return self.addr <= addr <= self.end

    def __str__(self) -> str:
        kind = BlockKind.NAMES[self.logical[0]]
        label = self.name or f"{kind}{self.logical[1:]}"
        return f"<block {label} @{self.addr:#x} {self.elem_type} x{self.count}>"


class MSRLT:
    """Registry of memory blocks for one process on one architecture."""

    def __init__(self, layout: TypeLayout) -> None:
        self.layout = layout
        self._by_logical: dict[LogicalId, MemoryBlock] = {}
        # sorted parallel arrays for address search
        self._starts: list[int] = []
        self._blocks: list[MemoryBlock] = []
        self._heap_serial = 0
        # last-hit lookup cache: pointer chains exhibit strong block
        # locality (an array of structs is traversed cell by cell), so
        # one interval check often replaces the bisect
        self._last_hit: Optional[MemoryBlock] = None
        #: mutation generation.  Every register/unregister/drop bumps it;
        #: the scalar last-hit cache and the bulk searchsorted arena both
        #: key their validity on it, so the two caches can never disagree
        #: about which table state they reflect.
        self.generation = 0
        self._last_hit_gen = -1
        self._arena = None  # lazily built repro.msr.graphplan.SortedArena
        #: heap-block mutation generation: bumped only when a HEAP block
        #: is (un)registered, so the chain plan's heap-only arena survives
        #: the per-collection stack registration churn
        self.heap_generation = 0
        self._heap_arena = None
        #: counters reported by the complexity benchmarks (E5)
        self.n_searches = 0
        self.n_cache_hits = 0
        self.n_registrations = 0
        #: attribution profiler the active Collector installs for one
        #: pass (None when profiling is off — the common case)
        self.profiler = None

    def __len__(self) -> int:
        return len(self._blocks)

    # -- registration -------------------------------------------------------------

    def _insert(self, block: MemoryBlock) -> MemoryBlock:
        if block.logical in self._by_logical:
            raise MSRLTError(f"duplicate registration of {block.logical}")
        # defensive: a registration over the cached interval (e.g. realloc
        # reusing a just-freed address) must evict the cache — unregister
        # already clears it, but no stale hit may survive either path
        last = self._last_hit
        if last is not None and block.addr < last.end and last.addr < block.end:
            self._last_hit = None
        self._by_logical[block.logical] = block
        if self._starts and block.addr > self._starts[-1]:
            self._starts.append(block.addr)  # common fast path (bump allocator)
            self._blocks.append(block)
        else:
            i = bisect_right(self._starts, block.addr)
            self._starts.insert(i, block.addr)
            self._blocks.insert(i, block)
        self.n_registrations += 1
        self.generation += 1
        if block.logical[0] == BlockKind.HEAP:
            self.heap_generation += 1
        return block

    def register_global(
        self, index: int, addr: int, ctype: CType, name: str = ""
    ) -> MemoryBlock:
        """Register one global variable (done at process load)."""
        size = self.layout.sizeof(ctype)
        return self._insert(
            MemoryBlock(
                addr=addr,
                elem_type=ctype,
                count=1,
                size=size,
                logical=(BlockKind.GLOBAL, index, 0),
                name=name,
            )
        )

    def register_stack(
        self, frame_depth: int, var_index: int, addr: int, ctype: CType, name: str = ""
    ) -> MemoryBlock:
        """Register one local variable of the activation record at
        *frame_depth* (0 = outermost frame)."""
        size = self.layout.sizeof(ctype)
        return self._insert(
            MemoryBlock(
                addr=addr,
                elem_type=ctype,
                count=1,
                size=size,
                logical=(BlockKind.STACK, frame_depth, var_index),
                name=name,
            )
        )

    def register_heap(
        self, addr: int, elem_type: CType, count: int, serial: Optional[int] = None
    ) -> MemoryBlock:
        """Register one heap allocation (done inside ``malloc``).

        *serial* is normally assigned locally; the restorer passes the
        source host's serial through so that logical ids keep matching if
        the restored process migrates again later.
        """
        if serial is None:
            serial = self._heap_serial
            self._heap_serial += 1
        else:
            self._heap_serial = max(self._heap_serial, serial + 1)
        size = self.layout.sizeof(elem_type) * count
        return self._insert(
            MemoryBlock(
                addr=addr,
                elem_type=elem_type,
                count=count,
                size=size,
                logical=(BlockKind.HEAP, serial, 0),
            )
        )

    def unregister(self, addr: int) -> None:
        """Remove the block starting exactly at *addr* (``free``)."""
        i = bisect_right(self._starts, addr) - 1
        if i < 0 or self._starts[i] != addr:
            raise MSRLTError(f"no block registered at {addr:#x}")
        block = self._blocks.pop(i)
        self._starts.pop(i)
        del self._by_logical[block.logical]
        self._last_hit = None  # a stale hit must never resolve a freed block
        self.generation += 1
        if block.logical[0] == BlockKind.HEAP:
            self.heap_generation += 1

    def drop_stack_blocks(self) -> None:
        """Remove all stack-kind blocks (collection-time registrations)."""
        keep = [b for b in self._blocks if b.logical[0] != BlockKind.STACK]
        self._blocks = keep
        self._starts = [b.addr for b in keep]
        self._by_logical = {b.logical: b for b in keep}
        self._last_hit = None
        self.generation += 1

    def register_heap_bulk(
        self,
        base: int,
        stride: int,
        elem_type: CType,
        count: int,
        serials: Sequence[int],
    ) -> list[MemoryBlock]:
        """Register ``len(serials)`` identical heap blocks at
        ``base + k*stride`` with one slice-insert into the sorted arrays.

        The whole address range must fall into a single gap between
        already-registered blocks (always true for blocks carved fresh
        off the heap brk) so the parallel arrays stay sorted without a
        per-block insort.  Used by the graph plan's chain restore.
        """
        n = len(serials)
        if n == 0:
            return []
        if stride <= 0:
            raise MSRLTError("bulk registration requires ascending addresses")
        size = self.layout.sizeof(elem_type) * count
        by_logical = self._by_logical
        blocks = []
        append = blocks.append
        heap = BlockKind.HEAP
        addr = base
        for serial in serials:
            logical = (heap, int(serial), 0)
            if logical in by_logical:
                raise MSRLTError(f"duplicate registration of {logical}")
            append(
                MemoryBlock(
                    addr=addr,
                    elem_type=elem_type,
                    count=count,
                    size=size,
                    logical=logical,
                )
            )
            addr += stride
        i = bisect_right(self._starts, base)
        if i != bisect_right(self._starts, blocks[-1].addr):
            raise MSRLTError("bulk registration range overlaps registered blocks")
        self._starts[i:i] = [b.addr for b in blocks]
        self._blocks[i:i] = blocks
        for b in blocks:
            by_logical[b.logical] = b
        self._heap_serial = max(self._heap_serial, int(max(serials)) + 1)
        self.n_registrations += n
        self.generation += 1
        self.heap_generation += 1
        return blocks

    # -- lookup -----------------------------------------------------------------------

    def lookup_addr(self, addr: int) -> tuple[MemoryBlock, int]:
        """Map a machine address to ``(block, byte offset within block)``.

        This is the MSRLT *search* of the paper's collection complexity:
        a binary search over registered block start addresses, short-cut
        by a last-hit cache (one interval check) when consecutive
        lookups land in the same block — the common case for pointer
        chains into arrays of structs.  ``n_cache_hits``/``n_searches``
        feed the E5 complexity benchmark's hit-rate report.
        """
        self.n_searches += 1
        # the cache is only valid for the generation that populated it:
        # unregister/drop paths clear it eagerly, but bulk registration
        # does not — the generation check is the single invalidation
        # rule shared with the searchsorted arena
        last = self._last_hit if self._last_hit_gen == self.generation else None
        # strict interior only: addr == last.end must re-run the search
        # so a block starting exactly at that address wins (C's
        # one-past-the-end rule, tested in test_msrlt.py)
        if last is not None and last.addr <= addr < last.end:
            self.n_cache_hits += 1
            if self.profiler is not None:
                self.profiler.msrlt_lookup(0, True)
            return last, addr - last.addr
        if self.profiler is not None:
            # a binary search over n starts probes ~ceil(log2 n) entries
            self.profiler.msrlt_lookup(len(self._starts).bit_length(), False)
        i = bisect_right(self._starts, addr) - 1
        if i >= 0:
            block = self._blocks[i]
            if block.contains(addr):
                self._last_hit = block
                self._last_hit_gen = self.generation
                return block, addr - block.addr
            # one-past-end of the previous block when the next block starts
            # immediately after: prefer the block that starts at addr
            if i + 1 < len(self._starts) and self._starts[i + 1] == addr:
                block = self._blocks[i + 1]
                self._last_hit = block
                self._last_hit_gen = self.generation
                return block, 0
        raise MSRLTError(f"address {addr:#x} is not inside any registered block")

    def arena(self):
        """The searchsorted arena snapshot for the current generation.

        Lazily (re)built whenever the table has mutated since the last
        snapshot; the generation stamp makes staleness impossible by
        construction (same rule as the scalar last-hit cache).
        """
        a = self._arena
        if a is None or a.generation != self.generation:
            from repro.msr.graphplan import SortedArena

            a = self._arena = SortedArena(self._blocks, self.generation)
        return a

    def heap_arena(self):
        """Heap-blocks-only arena snapshot, gated on ``heap_generation``.

        The chain plan only ever matches HEAP blocks, and collection
        registers/drops *stack* blocks around every pass — gating on the
        heap generation lets the snapshot survive that churn instead of
        being rebuilt once per collection.  Safe because the stack and
        heap segments are disjoint: a bisect over heap starts can never
        mistake a stack address for a heap block start.
        """
        a = self._heap_arena
        if a is None or a.generation != self.heap_generation:
            from repro.msr.graphplan import SortedArena

            heap = [b for b in self._blocks if b.logical[0] == BlockKind.HEAP]
            a = self._heap_arena = SortedArena(heap, self.heap_generation)
        return a

    def lookup_addrs_bulk(self, addrs):
        """Vectorized :meth:`lookup_addr` over an int64 ndarray.

        Returns ``(block_indexes, offsets)`` into :meth:`arena` —
        ``block_indexes[k] == -1`` where the address resolves to no
        registered block (the scalar path raises there; bulk callers
        fall back per-cell so the reference error surfaces verbatim).
        Start-preference over one-past-end is inherited from
        ``searchsorted(..., side="right")``; counted as one search per
        address so E5's complexity counters stay meaningful.
        """
        arena = self.arena()
        idx, offs = arena.lookup(addrs)
        n = len(addrs)
        self.n_searches += n
        if self.profiler is not None:  # pragma: no cover - plans disable
            depth = len(self._starts).bit_length()
            for _ in range(n):
                self.profiler.msrlt_lookup(depth, False)
        return idx, offs

    def blocks_overlapping(self, lo: int, hi: int) -> list[MemoryBlock]:
        """All registered blocks intersecting the byte range ``[lo, hi)``.

        Used by pre-copy dirty resolution: the write-barrier interval log
        is address-based, and this bisect maps each merged interval back
        to the blocks it touched.  Intervals over unregistered memory
        (e.g. a block freed after the write) simply yield nothing.
        """
        if lo >= hi:
            return []
        out: list[MemoryBlock] = []
        i = bisect_right(self._starts, lo) - 1
        if i >= 0 and self._blocks[i].end <= lo:
            i += 1
        elif i < 0:
            i = 0
        n = len(self._blocks)
        while i < n and self._starts[i] < hi:
            out.append(self._blocks[i])
            i += 1
        return out

    def lookup_logical(self, logical: LogicalId) -> MemoryBlock:
        """Map a machine-independent id back to its block (restoration)."""
        if type(logical) is not tuple:
            logical = tuple(logical)
        block = self._by_logical.get(logical)
        if block is None:
            raise MSRLTError(f"no block with logical id {logical}")
        return block

    def has_logical(self, logical: LogicalId) -> bool:
        """Whether a block with this logical id is registered."""
        if type(logical) is not tuple:
            logical = tuple(logical)
        return logical in self._by_logical

    def blocks(self) -> list[MemoryBlock]:
        """All registered blocks in address order (copy)."""
        return list(self._blocks)

    def heap_blocks(self) -> list[MemoryBlock]:
        """All heap-kind blocks, in address order."""
        return [b for b in self._blocks if b.logical[0] == BlockKind.HEAP]

    def total_bytes(self) -> int:
        """Σ Dᵢ — the total size of all registered blocks (§4.2)."""
        return sum(b.size for b in self._blocks)
