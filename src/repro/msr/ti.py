"""The Type Information (TI) table.

Paper §3.1: "The TI contains type information of every memory block in a
process including type-specific functions to transform data of each type
between machine-specific and machine-independent formats.  We call these
functions the memory block saving and restoring functions."

A :class:`TypeInfo` is the per-(type, architecture) record.  Array types
are decomposed into ``repeat × unit`` (the innermost non-array element),
so the record stays O(sizeof(unit)) even for an 8 MB matrix: a block of
``double[1000*1000]`` has ``unit=double, repeat=1000000, cells=(1,)``.

The performance-critical classification is the *flat primitive kind*:
when a type is a homogeneous dense run of one primitive (``double[n]``,
``int``, ``struct {int a; int b;}``) its blocks take the **bulk path** —
a single vectorized NumPy read/byteswap instead of a per-cell Python
loop.  This keeps collecting an 8 MB linpack matrix at memory-bandwidth
speed (Figure 2(a)'s linear regime); pointer-bearing blocks go through
the general cell-by-cell saving function.

One TI table is shared by every process of a program on one architecture
(it is a pure cache over the type graph).

Compiled codec plans
--------------------

Beyond the flat bulk path, every :class:`TypeInfo` lazily compiles a
*fused codec plan* the first time its contents are saved or restored
(DESIGN.md §8):

- a **pointer-free** unit with mixed kinds or padding (``struct {int a;
  double b;}``) gets a :class:`StructCodec` — two NumPy structured
  dtypes (host layout with real field offsets, packed big-endian wire
  layout) so an entire block converts with one vectorized per-field
  cast instead of ``cells × units`` Python-level ``xdr.encode`` calls;
- a **pointer-bearing** unit gets a :class:`SegmentedCodec` — the
  unit's cells are split into ``(bulk run, ptr)`` spans, each run
  precompiled into one host-order and one wire-order
  :class:`struct.Struct`, so only the pointer cells go through the
  Python-level graph traversal.

Both plans produce bytes **identical** to the per-cell path (the wire
format does not change; ``tests/test_codec_fuzz.py`` cross-checks the
encoders against each other), and both are per-(type, architecture),
so the destination table compiles its own mirror plans.  Setting
``TITable.codecs_enabled = False`` falls back to the per-cell path —
the baseline the E5 benchmarks and the fuzz tests compare against.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arch import xdr
from repro.clang.ctypes import (
    ArrayType,
    Cell,
    CType,
    PointerType,
    PrimType,
    StructType,
    TypeLayout,
    type_key,
)

__all__ = [
    "TypeInfo",
    "TITable",
    "flat_prim_kind",
    "unit_of",
    "StructCodec",
    "SegmentedCodec",
    "BulkRun",
]


def unit_of(ctype: CType) -> tuple[CType, int]:
    """Decompose *ctype* into ``(unit, repeat)`` — the innermost non-array
    element type and how many of them the type contains."""
    repeat = 1
    while isinstance(ctype, ArrayType):
        repeat *= ctype.length
        ctype = ctype.elem
    return ctype, repeat


def flat_prim_kind(ctype: CType, layout: TypeLayout) -> Optional[str]:
    """The single primitive kind *ctype* is a dense array of, if any.

    Returns e.g. ``"double"`` for ``double`` or ``double[100]``, or
    ``None`` when the type contains pointers, mixed kinds, or padding
    (then the general cell path must be used).  Computed structurally on
    the *unit* type, so it is O(unit fields) even for huge arrays.
    """
    unit, _repeat = unit_of(ctype)
    if isinstance(unit, PrimType):
        return unit.kind
    if not isinstance(unit, StructType):
        return None  # pointers and anything exotic
    cells = layout.cells(unit)
    if not cells:
        return None
    kind = cells[0].kind
    if kind == "ptr" or any(c.kind != kind for c in cells):
        return None
    prim_size = layout.arch.sizeof(kind)
    if layout.sizeof(unit) != len(cells) * prim_size:
        return None  # tail padding
    return kind if all(c.offset == i * prim_size for i, c in enumerate(cells)) else None


@dataclass(slots=True)
class TypeInfo:
    """Per-(type, architecture) saving/restoring metadata.

    ``cells`` describe one *unit*; a block of this type with count *c*
    holds ``c * repeat`` units laid out back to back.
    """

    ctype: CType
    type_id: int
    size: int  # sizeof(ctype) on this architecture
    unit: CType
    unit_size: int
    repeat: int  # units per single ctype value
    cells: tuple[Cell, ...]  # cells of ONE unit
    cell_count: int  # len(cells)
    #: homogeneous dense primitive kind (bulk path) or None (cell path)
    flat_kind: Optional[str]
    #: True when the unit contains at least one pointer cell
    has_pointers: bool
    #: lazily compiled codec plan (see module docstring); ``None`` until
    #: first use, the module sentinel when no plan applies
    codec: object = field(default=None, repr=False, compare=False)
    #: lazily compiled whole-graph plan (repro.msr.graphplan); ``None``
    #: until first use, ``graphplan.NO_PLAN`` when no plan shape applies
    plan: object = field(default=None, repr=False, compare=False)
    #: cached human-readable label (the attribution table's row key);
    #: ``str(ctype)`` computed once instead of per block visit
    _label: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def label(self) -> str:
        """The C declaration text of this type (cached)."""
        if self._label is None:
            self._label = str(self.ctype)
        return self._label

    def units_in(self, count: int) -> int:
        """Number of units in a block of *count* elements of this type."""
        return count * self.repeat

    def cells_in(self, count: int) -> int:
        """Number of primitive leaves in a block of *count* elements."""
        return count * self.repeat * self.cell_count

    def ordinal_to_byte(self, ordinal: int, count: int) -> int:
        """Byte offset of cell *ordinal* within a block of *count* elements."""
        total = self.cells_in(count)
        if ordinal == total:  # one past the end
            return self.units_in(count) * self.unit_size
        unit_idx, within = divmod(ordinal, self.cell_count)
        return unit_idx * self.unit_size + self.cells[within].offset

    def byte_to_ordinal(self, offset: int, count: int) -> int:
        """Cell ordinal of byte *offset* within a block of *count* elements."""
        if offset == self.units_in(count) * self.unit_size:
            return self.cells_in(count)
        unit_idx, within = divmod(offset, self.unit_size)
        lo, hi = 0, len(self.cells)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cells[mid].offset < within:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.cells) and self.cells[lo].offset == within:
            return unit_idx * self.cell_count + lo
        raise ValueError(
            f"byte offset {offset} in {self.ctype} does not address a cell "
            "(pointer into padding cannot be migrated)"
        )


# -- compiled codec plans ------------------------------------------------------

#: TypeInfo.codec value meaning "compiled: no plan applies, use the
#: flat bulk path or the per-cell loop"
_NO_CODEC = object()


def _wrap_ints(values, fixes):
    """Apply per-value two's-complement reduction ``(mask, sign)`` pairs
    (``None`` entries pass through).  Mirrors :func:`repro.arch.xdr.encode`'s
    integer handling, pre-bound per cell at plan-compile time."""
    out = []
    for v, fix in zip(values, fixes):
        if fix is not None:
            mask, sign = fix
            v = int(v) & mask
            if v & sign:
                v -= mask + 1
        out.append(v)
    return out


class BulkRun:
    """One maximal run of consecutive non-pointer cells inside a unit.

    ``host`` unpacks/packs the run's bytes in the block's architecture
    (``x`` pad codes skip inter-cell padding); ``wire`` is the packed
    big-endian wire image of the same cells.  ``enc_fix``/``dec_fix``
    hold the integer wrap parameters for cells whose host and wire
    representations differ (width or signedness) — ``None`` when every
    cell converts losslessly, which is the common case.
    """

    __slots__ = ("offset", "host", "host_nbytes", "wire", "wire_nbytes",
                 "enc_fix", "dec_fix")

    def __init__(self, offset, host, wire, enc_fix, dec_fix) -> None:
        self.offset = offset
        self.host = host
        self.host_nbytes = host.size
        self.wire = wire
        self.wire_nbytes = wire.size
        self.enc_fix = enc_fix
        self.dec_fix = dec_fix


class StructCodec:
    """Whole-block vectorized codec for pointer-free, non-flat units.

    The host side is a NumPy structured dtype with the unit's real field
    offsets and itemsize (so struct padding is stepped over for free);
    the wire side is the packed big-endian image.  Encoding an entire
    block is then ``len(cells)`` vectorized field casts, independent of
    the number of units — the same O(fields) shape the flat path has.
    """

    __slots__ = ("src_dtype", "wire_dtype", "names", "wire_unit_size")

    def __init__(self, cells: tuple[Cell, ...], unit_size: int, arch) -> None:
        self.names = tuple(f"c{i}" for i in range(len(cells)))
        host_formats = [xdr.host_np_dtype(c.kind, arch) for c in cells]
        self.src_dtype = np.dtype({
            "names": list(self.names),
            "formats": host_formats,
            "offsets": [c.offset for c in cells],
            "itemsize": unit_size,
        })
        wire_formats = [xdr.wire_dtype(c.kind) for c in cells]
        wire_offsets, off = [], 0
        for c in cells:
            wire_offsets.append(off)
            off += xdr.wire_sizeof(c.kind)
        self.wire_unit_size = off
        self.wire_dtype = np.dtype({
            "names": list(self.names),
            "formats": wire_formats,
            "offsets": wire_offsets,
            "itemsize": off,
        })

    def save(self, collector, block, info) -> None:
        n = info.units_in(block.count)
        raw = collector.memory.view(block.addr, n * info.unit_size)
        src = np.frombuffer(raw, dtype=self.src_dtype, count=n)
        out = np.zeros(n, dtype=self.wire_dtype)
        for name in self.names:
            # field assignment casts C-style: narrowing wraps modulo
            # 2^bits, widening sign-extends — same as xdr.encode
            out[name] = src[name]
        collector.buf.write(out.tobytes())

    def restore(self, restorer, block, info) -> None:
        n = info.units_in(block.count)
        raw = restorer.buf.read(n * self.wire_unit_size)
        wire = np.frombuffer(raw, dtype=self.wire_dtype, count=n)
        # zeros, not empty: struct padding must restore deterministically
        out = np.zeros(n, dtype=self.src_dtype)
        for name in self.names:
            out[name] = wire[name]
        restorer.memory.write_bytes(block.addr, out.tobytes())


class SegmentedCodec:
    """Codec plan for pointer-bearing units: ``(bulk run | ptr)`` spans.

    Non-pointer cells batch into precompiled :class:`BulkRun`s (one
    unpack + one pack per run instead of two Python calls per cell);
    pointer cells — an ``int`` offset in the segment list — go through
    the collector/restorer's graph traversal exactly as before.
    """

    __slots__ = ("segments", "run_lengths")

    def __init__(self, cells: tuple[Cell, ...], arch) -> None:
        host_order = "<" if arch.byteorder == "little" else ">"
        segments: list = []
        run_lengths: list[int] = []
        run: list[Cell] = []

        def close_run() -> None:
            if not run:
                return
            run_lengths.append(len(run))
            host_fmt, wire_fmt = [host_order], [">"]
            enc_fix, dec_fix, any_fix = [], [], False
            pos = run[0].offset
            for c in run:
                if c.offset > pos:
                    host_fmt.append("x" * (c.offset - pos))
                hcode = xdr.host_struct_code(c.kind, arch)
                wcode = xdr.wire_struct_code(c.kind)
                host_fmt.append(hcode)
                wire_fmt.append(wcode)
                if hcode != wcode and c.kind not in ("float", "double"):
                    wm, ws, wsig = xdr.int_bounds(wcode, xdr.wire_sizeof(c.kind))
                    hm, hs, hsig = xdr.int_bounds(hcode, arch.sizeof(c.kind))
                    enc_fix.append((wm, ws if wsig else 0))
                    dec_fix.append((hm, hs if hsig else 0))
                    any_fix = True
                else:
                    enc_fix.append(None)
                    dec_fix.append(None)
                pos = c.offset + arch.sizeof(c.kind)
            segments.append(BulkRun(
                run[0].offset,
                struct.Struct("".join(host_fmt)),
                struct.Struct("".join(wire_fmt)),
                tuple(enc_fix) if any_fix else None,
                tuple(dec_fix) if any_fix else None,
            ))
            run.clear()

        for cell in cells:
            if cell.kind == "ptr":
                close_run()
                segments.append(cell.offset)
            else:
                run.append(cell)
        close_run()
        self.segments = tuple(segments)
        #: cells per bulk run — the compilation gate skips plans whose
        #: runs never batch more than one cell
        self.run_lengths = tuple(run_lengths)

    def save(self, collector, block, info) -> None:
        memory = collector.memory
        buf = collector.buf
        load = memory.load
        read_bytes = memory.read_bytes
        save_pointer = collector.save_pointer
        stride = info.unit_size
        addr = block.addr
        for u in range(info.units_in(block.count)):
            base = addr + u * stride
            for seg in self.segments:
                if type(seg) is int:  # a pointer cell
                    save_pointer(load("ptr", base + seg))
                else:
                    vals = seg.host.unpack(read_bytes(base + seg.offset, seg.host_nbytes))
                    if seg.enc_fix is not None:
                        vals = _wrap_ints(vals, seg.enc_fix)
                    buf.write(seg.wire.pack(*vals))

    def restore(self, restorer, block, info) -> None:
        memory = restorer.memory
        buf = restorer.buf
        store = memory.store
        write_bytes = memory.write_bytes
        restore_pointer = restorer.restore_pointer
        stride = info.unit_size
        addr = block.addr
        for u in range(info.units_in(block.count)):
            base = addr + u * stride
            for seg in self.segments:
                if type(seg) is int:
                    store("ptr", base + seg, restore_pointer())
                else:
                    vals = seg.wire.unpack(buf.read(seg.wire_nbytes))
                    if seg.dec_fix is not None:
                        vals = _wrap_ints(vals, seg.dec_fix)
                    write_bytes(base + seg.offset, seg.host.pack(*vals))


class TITable:
    """All :class:`TypeInfo` records for one (program, architecture).

    Shared by every process of the program on that architecture — the
    table is a pure cache over the (immutable) type graph.
    """

    def __init__(self, program, layout: TypeLayout) -> None:
        self.program = program
        self.layout = layout
        self._infos: dict[int, TypeInfo] = {}
        # info_for memo: keyed on object identity, holding the type
        # object alive in the value so its id can never be recycled
        # (the poison scenario the layout's key-based memos avoid)
        self._by_identity: dict[int, tuple[CType, TypeInfo]] = {}
        #: when False, contents go through the per-cell reference path —
        #: the baseline the benchmarks and fuzz tests compare against
        self.codecs_enabled = True
        #: when False, whole-graph plans (repro.msr.graphplan) are never
        #: compiled or consulted — the plan-off baseline for difftests
        self.graphplan_enabled = True
        #: info_for memo hit/miss counters (the engine reports the
        #: per-migration delta as ``ti.info_hits`` / ``ti.info_misses``)
        self.n_info_hits = 0
        self.n_info_misses = 0

    def info(self, type_id: int) -> TypeInfo:
        """The (cached) TypeInfo record for wire type id *type_id*."""
        ti = self._infos.get(type_id)
        if ti is None:
            ctype = self.program.type_by_id(type_id)
            unit, repeat = unit_of(ctype)
            cells = self.layout.cells(unit)
            ti = TypeInfo(
                ctype=ctype,
                type_id=type_id,
                size=self.layout.sizeof(ctype),
                unit=unit,
                unit_size=self.layout.sizeof(unit),
                repeat=repeat,
                cells=cells,
                cell_count=len(cells),
                flat_kind=flat_prim_kind(ctype, self.layout),
                has_pointers=any(c.kind == "ptr" for c in cells),
            )
            self._infos[type_id] = ti
        return ti

    def info_for(self, ctype: CType) -> TypeInfo:
        """The TypeInfo record for *ctype* (must be registered).

        Memoized by object identity: ``_save_target`` re-resolves the
        same block types once per record, and recomputing the structural
        type key each time was a measurable share of collection time.
        """
        hit = self._by_identity.get(id(ctype))
        if hit is not None:
            self.n_info_hits += 1
            return hit[1]
        self.n_info_misses += 1
        info = self.info(self.program.type_id(ctype))
        self._by_identity[id(ctype)] = (ctype, info)
        return info

    # -- compiled codec plans ----------------------------------------------------

    def codec_for(self, info: TypeInfo):
        """The compiled codec plan for *info*, or ``None`` when the
        per-cell path must be used (codecs disabled, or the type is
        flat and the bulk path already covers it)."""
        if not self.codecs_enabled:
            return None
        codec = info.codec
        if codec is None:
            codec = info.codec = self._compile_codec(info)
        return None if codec is _NO_CODEC else codec

    def _compile_codec(self, info: TypeInfo):
        if info.flat_kind is not None or not info.cells:
            return _NO_CODEC  # the flat bulk path already handles it
        if not info.has_pointers:
            return StructCodec(info.cells, info.unit_size, self.layout.arch)
        codec = SegmentedCodec(info.cells, self.layout.arch)
        # a segmented plan only wins when a bulk run actually batches
        # cells; on tiny pointer-heavy units (a tree node: one int + two
        # pointers) the per-run dispatch costs more than the per-cell
        # loop it replaces
        if max(codec.run_lengths, default=0) < 2:
            return _NO_CODEC
        return codec

    # -- compiled whole-graph plans ---------------------------------------------

    def plan_for(self, info: TypeInfo):
        """The compiled whole-graph plan for *info* (DESIGN §12), or
        ``None`` when no plan shape applies.  Lazily compiled, like
        :meth:`codec_for`; the import is deferred so the graphplan
        module (and NumPy's structured-dtype machinery) only loads when
        plans are actually in play."""
        from repro.msr.graphplan import NO_PLAN, compile_plan

        plan = info.plan
        if plan is None:
            plan = info.plan = compile_plan(info, self.layout) or NO_PLAN
        return None if plan is NO_PLAN else plan

    # -- the memory block saving/restoring functions ---------------------------------

    def save_flat(self, memory, block_addr: int, kind: str, n: int) -> bytes:
        """Bulk path: encode *n* primitives of *kind* at *block_addr* into
        the machine-independent format in one vectorized operation."""
        values = memory.read_array(kind, block_addr, n)
        return xdr.encode_array(kind, values)

    def restore_flat(self, memory, block_addr: int, kind: str, n: int, data) -> None:
        """Bulk path inverse: decode and write *n* primitives."""
        values = xdr.decode_array(kind, data, n)
        memory.write_array(kind, block_addr, values)
