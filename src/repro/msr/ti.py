"""The Type Information (TI) table.

Paper §3.1: "The TI contains type information of every memory block in a
process including type-specific functions to transform data of each type
between machine-specific and machine-independent formats.  We call these
functions the memory block saving and restoring functions."

A :class:`TypeInfo` is the per-(type, architecture) record.  Array types
are decomposed into ``repeat × unit`` (the innermost non-array element),
so the record stays O(sizeof(unit)) even for an 8 MB matrix: a block of
``double[1000*1000]`` has ``unit=double, repeat=1000000, cells=(1,)``.

The performance-critical classification is the *flat primitive kind*:
when a type is a homogeneous dense run of one primitive (``double[n]``,
``int``, ``struct {int a; int b;}``) its blocks take the **bulk path** —
a single vectorized NumPy read/byteswap instead of a per-cell Python
loop.  This keeps collecting an 8 MB linpack matrix at memory-bandwidth
speed (Figure 2(a)'s linear regime); pointer-bearing blocks go through
the general cell-by-cell saving function.

One TI table is shared by every process of a program on one architecture
(it is a pure cache over the type graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch import xdr
from repro.clang.ctypes import (
    ArrayType,
    Cell,
    CType,
    PointerType,
    PrimType,
    StructType,
    TypeLayout,
    type_key,
)

__all__ = ["TypeInfo", "TITable", "flat_prim_kind", "unit_of"]


def unit_of(ctype: CType) -> tuple[CType, int]:
    """Decompose *ctype* into ``(unit, repeat)`` — the innermost non-array
    element type and how many of them the type contains."""
    repeat = 1
    while isinstance(ctype, ArrayType):
        repeat *= ctype.length
        ctype = ctype.elem
    return ctype, repeat


def flat_prim_kind(ctype: CType, layout: TypeLayout) -> Optional[str]:
    """The single primitive kind *ctype* is a dense array of, if any.

    Returns e.g. ``"double"`` for ``double`` or ``double[100]``, or
    ``None`` when the type contains pointers, mixed kinds, or padding
    (then the general cell path must be used).  Computed structurally on
    the *unit* type, so it is O(unit fields) even for huge arrays.
    """
    unit, _repeat = unit_of(ctype)
    if isinstance(unit, PrimType):
        return unit.kind
    if not isinstance(unit, StructType):
        return None  # pointers and anything exotic
    cells = layout.cells(unit)
    if not cells:
        return None
    kind = cells[0].kind
    if kind == "ptr" or any(c.kind != kind for c in cells):
        return None
    prim_size = layout.arch.sizeof(kind)
    if layout.sizeof(unit) != len(cells) * prim_size:
        return None  # tail padding
    return kind if all(c.offset == i * prim_size for i, c in enumerate(cells)) else None


@dataclass
class TypeInfo:
    """Per-(type, architecture) saving/restoring metadata.

    ``cells`` describe one *unit*; a block of this type with count *c*
    holds ``c * repeat`` units laid out back to back.
    """

    ctype: CType
    type_id: int
    size: int  # sizeof(ctype) on this architecture
    unit: CType
    unit_size: int
    repeat: int  # units per single ctype value
    cells: tuple[Cell, ...]  # cells of ONE unit
    cell_count: int  # len(cells)
    #: homogeneous dense primitive kind (bulk path) or None (cell path)
    flat_kind: Optional[str]
    #: True when the unit contains at least one pointer cell
    has_pointers: bool

    def units_in(self, count: int) -> int:
        """Number of units in a block of *count* elements of this type."""
        return count * self.repeat

    def cells_in(self, count: int) -> int:
        """Number of primitive leaves in a block of *count* elements."""
        return count * self.repeat * self.cell_count

    def ordinal_to_byte(self, ordinal: int, count: int) -> int:
        """Byte offset of cell *ordinal* within a block of *count* elements."""
        total = self.cells_in(count)
        if ordinal == total:  # one past the end
            return self.units_in(count) * self.unit_size
        unit_idx, within = divmod(ordinal, self.cell_count)
        return unit_idx * self.unit_size + self.cells[within].offset

    def byte_to_ordinal(self, offset: int, count: int) -> int:
        """Cell ordinal of byte *offset* within a block of *count* elements."""
        if offset == self.units_in(count) * self.unit_size:
            return self.cells_in(count)
        unit_idx, within = divmod(offset, self.unit_size)
        lo, hi = 0, len(self.cells)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cells[mid].offset < within:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.cells) and self.cells[lo].offset == within:
            return unit_idx * self.cell_count + lo
        raise ValueError(
            f"byte offset {offset} in {self.ctype} does not address a cell "
            "(pointer into padding cannot be migrated)"
        )


class TITable:
    """All :class:`TypeInfo` records for one (program, architecture).

    Shared by every process of the program on that architecture — the
    table is a pure cache over the (immutable) type graph.
    """

    def __init__(self, program, layout: TypeLayout) -> None:
        self.program = program
        self.layout = layout
        self._infos: dict[int, TypeInfo] = {}

    def info(self, type_id: int) -> TypeInfo:
        """The (cached) TypeInfo record for wire type id *type_id*."""
        ti = self._infos.get(type_id)
        if ti is None:
            ctype = self.program.type_by_id(type_id)
            unit, repeat = unit_of(ctype)
            cells = self.layout.cells(unit)
            ti = TypeInfo(
                ctype=ctype,
                type_id=type_id,
                size=self.layout.sizeof(ctype),
                unit=unit,
                unit_size=self.layout.sizeof(unit),
                repeat=repeat,
                cells=cells,
                cell_count=len(cells),
                flat_kind=flat_prim_kind(ctype, self.layout),
                has_pointers=any(c.kind == "ptr" for c in cells),
            )
            self._infos[type_id] = ti
        return ti

    def info_for(self, ctype: CType) -> TypeInfo:
        """The TypeInfo record for *ctype* (must be registered)."""
        return self.info(self.program.type_id(ctype))

    # -- the memory block saving/restoring functions ---------------------------------

    def save_flat(self, memory, block_addr: int, kind: str, n: int) -> bytes:
        """Bulk path: encode *n* primitives of *kind* at *block_addr* into
        the machine-independent format in one vectorized operation."""
        values = memory.read_array(kind, block_addr, n)
        return xdr.encode_array(kind, values)

    def restore_flat(self, memory, block_addr: int, kind: str, n: int, data) -> None:
        """Bulk path inverse: decode and write *n* primitives."""
        values = xdr.decode_array(kind, data, n)
        memory.write_array(kind, block_addr, values)
