"""Memory Space Representation: the paper's core contribution.

- :mod:`repro.msr.msrlt` — the MSR Lookup Table: tracks memory blocks,
  provides machine-independent logical identification, and supports the
  address→block search used during collection (paper §3.1);
- :mod:`repro.msr.ti` — the Type Information table: per-type layout and
  the type-specific saving/restoring functions (with a vectorized fast
  path for large pointer-free arrays);
- :mod:`repro.msr.wire` — the machine-independent migration payload
  format (pointer = *pointer header* + *offset*, per §3.2);
- :mod:`repro.msr.collect` — ``Save_pointer`` / ``Save_variable``:
  depth-first traversal of the MSR graph with visited-marking;
- :mod:`repro.msr.restore` — ``Restore_pointer`` / ``Restore_variable``:
  recursive reconstruction on the destination;
- :mod:`repro.msr.model` — explicit MSR graph G=(V,E) snapshots for
  inspection, tests, and the paper's Figure 1 example.
"""

from repro.msr.msrlt import (
    BlockKind,
    LogicalId,
    MemoryBlock,
    MSRLT,
    MSRLTError,
)
from repro.msr.ti import TypeInfo, TITable
from repro.msr.collect import Collector, Save_pointer, Save_variable
from repro.msr.restore import Restorer, Restore_pointer, Restore_variable
from repro.msr.model import MSRGraph, MSREdge, build_msr_graph

__all__ = [
    "BlockKind",
    "LogicalId",
    "MemoryBlock",
    "MSRLT",
    "MSRLTError",
    "TypeInfo",
    "TITable",
    "Collector",
    "Save_pointer",
    "Save_variable",
    "Restorer",
    "Restore_pointer",
    "Restore_variable",
    "MSRGraph",
    "MSREdge",
    "build_msr_graph",
]
