"""Data collection: ``Save_pointer`` and ``Save_variable``.

Paper §3.1: "Save_pointer initiates a depth-first traversal through
connected components of the MSR graph.  It examines memory blocks that
are referred to by pointers and then invokes type-specific saving
functions to save their contents.  During the traversal, visited memory
blocks are marked so that they are not saved again."

The collector walks live pointers depth-first; the first visit of a
block emits a ``BLOCK`` record (header, machine-independent id, type,
then contents converted cell-by-cell or via the bulk XDR path), every
later reference emits only a ``REF``.  Pointers inside block contents
recurse, which reproduces exactly the traversal order the paper's §3.2
example walks through (v11 → e8 → v6 → e6 → v10, backtrack …).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.arch import xdr
from repro.arch.buffers import WriteBuffer
from repro.msr.graphplan import NO_PLAN
from repro.msr.msrlt import MemoryBlock, MSRLTError
from repro.msr.ti import TypeInfo
from repro.msr.wire import FLAG_FLAT, TAG_BLOCK, TAG_NULL, TAG_REF, write_logical
from repro.obs.attribution import block_class_of

__all__ = ["CollectStats", "Collector", "Save_pointer", "Save_variable"]


@dataclass(slots=True)
class CollectStats:
    """Accounting for one collection run (feeds Table 1 / Figure 2)."""

    n_blocks: int = 0
    n_refs: int = 0
    n_nulls: int = 0
    n_flat_blocks: int = 0
    #: blocks saved through a compiled codec plan (struct or segmented)
    n_codec_blocks: int = 0
    #: blocks saved through a whole-graph plan (flat/ptr-array bulk;
    #: chain batches count into n_blocks directly, not here)
    n_plan_blocks: int = 0
    #: blocks elided as pre-copy cached stubs (TAG_CACHED records)
    n_cached_blocks: int = 0
    data_bytes: int = 0  # Σ Dᵢ over saved blocks (source-arch bytes)
    wire_bytes: int = 0


class Collector:
    """One data-collection pass over a process's live state."""

    #: whether the ptr_array/chain whole-graph plans may emit BLOCK
    #: records in bulk.  The pre-copy delta/final collectors override
    #: per-record tag decisions (REF-only, cached stubs), which the bulk
    #: emitters would bypass — they subclass with this set to False.
    #: Flat plans and codecs stay enabled: they route every pointer cell
    #: through the overridable save_pointer, or carry no pointers at all.
    pointer_plans = True

    def __init__(self, process, buf: WriteBuffer) -> None:
        self.process = process
        self.memory = process.memory
        self.msrlt = process.msrlt
        self.ti = process.ti
        self.buf = buf
        self._visited: set[tuple] = set()
        self.stats = CollectStats()
        # attribution is resolved ONCE per pass; when off (None) every
        # per-block hook below is a single `is not None` test
        self._prof = obs.current_attribution()
        if self._prof is not None:
            self.msrlt.profiler = self._prof
        # whole-graph plans are bypassed under attribution so PR 5's
        # exact per-type byte partition keeps its meaning (DESIGN §12)
        self.plan_enabled = self._prof is None and getattr(
            process.ti, "graphplan_enabled", True
        )
        # chain-plan engagement backoff state (graphplan.ChainPlan)
        self._chain_misses = 0
        self._chain_skip = 0

    # -- public entry points (paper interface names) --------------------------------

    def save_variable(self, block: MemoryBlock) -> None:
        """``Save_variable(&var)`` — collect the variable's own block."""
        self._save_target(block, byte_off=0)

    def save_pointer(self, value: int) -> None:
        """``Save_pointer(p)`` — collect the target of pointer value *p*."""
        if value == 0:
            self.buf.write_u8(TAG_NULL)
            self.buf.count_tag("NULL")
            self.stats.n_nulls += 1
            return
        try:
            block, off = self.msrlt.lookup_addr(value)
        except MSRLTError:
            raise MSRLTError(
                f"pointer {value:#x} does not refer to any live memory block; "
                "the program stored a dangling or fabricated address, which is "
                "migration-unsafe"
            ) from None
        self._save_target(block, off)

    # -- traversal ---------------------------------------------------------------------

    def _save_target(self, block: MemoryBlock, byte_off: int) -> None:
        info = self.ti.info_for(block.elem_type)
        ordinal = info.byte_to_ordinal(byte_off, block.count)
        if block.logical in self._visited:
            self.buf.write_u8(TAG_REF)
            self.buf.count_tag("REF")
            write_logical(self.buf, block.logical)
            self.buf.write_u32(ordinal)
            self.stats.n_refs += 1
            return

        # mark BEFORE saving contents: cycles degrade to REFs
        self._visited.add(block.logical)
        prof = self._prof
        if prof is not None:
            prof.enter_block(
                "collect", info.label, block_class_of(block.logical),
                self.buf.nbytes,
            )
        self.buf.write_u8(TAG_BLOCK)
        self.buf.count_tag("BLOCK")
        write_logical(self.buf, block.logical)
        self.buf.write_u32(info.type_id)
        self.buf.write_u32(block.count)
        self.buf.write_u32(ordinal)
        self.stats.n_blocks += 1
        self.stats.data_bytes += block.size
        if prof is None:
            self._save_contents(block, info)
        else:
            engagement = "percell"
            try:
                engagement = self._save_contents(block, info)
            finally:
                prof.exit_block(
                    self.buf.nbytes, engagement,
                    cells=info.cells_in(block.count),
                )

    def _save_contents(self, block: MemoryBlock, info: TypeInfo) -> str:
        """Serialize one block's contents; returns which path engaged
        (``"flat"`` / ``"codec"`` / ``"percell"``, for attribution)."""
        if self.plan_enabled:
            # inlined ti.plan_for fast path — this runs once per record
            plan = info.plan
            if plan is None:
                plan = self.ti.plan_for(info)
            elif plan is NO_PLAN:
                plan = None
        else:
            plan = None
        if info.flat_kind is not None:
            # bulk path: one vectorized encode for the whole block
            self.buf.write_u8(FLAG_FLAT)
            n = info.cells_in(block.count)
            if plan is not None and plan.save(self, block, info):
                # zero-copy cast straight into the wire buffer storage
                self.stats.n_plan_blocks += 1
                return "plan"
            self.buf.write(self.ti.save_flat(self.memory, block.addr, info.flat_kind, n))
            self.stats.n_flat_blocks += 1
            return "flat"

        self.buf.write_u8(0)
        codec = self.ti.codec_for(info)
        if codec is not None:
            # compiled plan: vectorized (pointer-free) or segmented
            # (bulk runs + pointers); bytes identical to the loop below
            codec.save(self, block, info)
            self.stats.n_codec_blocks += 1
            return "codec"
        if (
            plan is not None
            and self.pointer_plans
            and plan.KIND == "ptr_array"
            and plan.save(self, block, info)
        ):
            self.stats.n_plan_blocks += 1
            return "plan"
        chain = (
            plan
            if plan is not None and self.pointer_plans and plan.KIND == "chain"
            else None
        )
        memory = self.memory
        buf = self.buf
        addr = block.addr
        stride = info.unit_size
        cells = info.cells
        tail = cells[-1] if chain is not None else None
        for unit in range(info.units_in(block.count)):
            base = addr + unit * stride
            for cell in cells:
                if cell.kind == "ptr":
                    value = memory.load("ptr", base + cell.offset)
                    if cell is tail:
                        # tail pointer of a chain-shaped struct: let the
                        # plan try a batched stride walk (emits exactly
                        # what save_pointer would).  The backoff skip
                        # branch is inlined so declined tails cost one
                        # int test over the reference path
                        if self._chain_skip and value != 0:
                            self._chain_skip -= 1
                            self.save_pointer(value)
                        else:
                            chain.save_tail(self, value)
                    else:
                        self.save_pointer(value)
                else:
                    buf.write(xdr.encode(cell.kind, memory.load(cell.kind, base + cell.offset)))
        return "percell"

    # -- bookkeeping --------------------------------------------------------------------

    def finish(self) -> CollectStats:
        """Finalize statistics (call once after all saves)."""
        self.stats.wire_bytes = self.buf.nbytes
        if self._prof is not None:
            self._prof.note_payload(self.buf.nbytes)
            # the pass is over; stop feeding lookup costs to the profiler
            self.msrlt.profiler = None
        return self.stats


# -- paper-style free-function interface --------------------------------------------


def Save_variable(collector: Collector, block: MemoryBlock) -> None:
    """Paper-style alias for :meth:`Collector.save_variable`."""
    collector.save_variable(block)


def Save_pointer(collector: Collector, value: int) -> None:
    """Paper-style alias for :meth:`Collector.save_pointer`."""
    collector.save_pointer(value)
