"""The machine-independent migration payload format.

Layout (all integers big-endian, strings u16-length-prefixed UTF-8):

.. code-block:: text

    header:
        u32  magic          'MIGR'
        u8   version
        str  source arch name
        u16  n_frames
        n_frames x (u32 func_index, u32 resume_pc)   # outermost first
    frame data (innermost frame first, matching the paper's example):
        per frame: u16 n_live, n_live x (u16 var_index, record)
    globals:
        u32 n_globals, n_globals x (u32 global_index, record)

A *record* describes one pointer target or variable (§3.2's "pointer
header and offset" format):

.. code-block:: text

    record := NULL
            | REF   logical ordinal
            | BLOCK logical type_id count ordinal contents
    logical := u8 kind, u32 a, u32 b        # the pointer header
    ordinal := u32                          # element offset in the block
    contents := u8 FLAG_FLAT, raw xdr bytes           # dense primitive runs
              | u8 0, per-cell (xdr scalar | record)  # general blocks

A ``BLOCK`` appears for the first (depth-first) visit of each memory
block; every later reference is a ``REF``.  Cycles are safe because the
restorer registers the block mapping *before* reading its contents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.buffers import ReadBuffer, WriteBuffer

__all__ = [
    "MAGIC",
    "VERSION",
    "TAG_NULL",
    "TAG_REF",
    "TAG_BLOCK",
    "FLAG_FLAT",
    "WireHeader",
    "write_header",
    "read_header",
    "write_logical",
    "read_logical",
]

MAGIC = 0x4D494752  # 'MIGR'
VERSION = 1

TAG_NULL = 0
TAG_REF = 1
TAG_BLOCK = 2

FLAG_FLAT = 1


@dataclass
class WireHeader:
    """Execution-state header of a migration payload."""

    source_arch: str
    #: (function index, resume pc) outermost frame first
    frames: list[tuple[int, int]]
    version: int = VERSION


def write_header(buf: WriteBuffer, header: WireHeader) -> None:
    """Serialize the payload header (magic, arch, frame table)."""
    buf.write_u32(MAGIC)
    buf.write_u8(header.version)
    buf.write_str(header.source_arch)
    buf.write_u16(len(header.frames))
    for func_idx, resume_pc in header.frames:
        buf.write_u32(func_idx)
        buf.write_u32(resume_pc)


def read_header(buf: ReadBuffer) -> WireHeader:
    """Parse and validate the payload header."""
    magic = buf.read_u32()
    if magic != MAGIC:
        raise ValueError(f"bad migration payload magic {magic:#x}")
    version = buf.read_u8()
    if version != VERSION:
        raise ValueError(f"unsupported payload version {version}")
    source_arch = buf.read_str()
    n = buf.read_u16()
    frames = [(buf.read_u32(), buf.read_u32()) for _ in range(n)]
    return WireHeader(source_arch=source_arch, frames=frames, version=version)


def write_logical(buf: WriteBuffer, logical: tuple) -> None:
    """Serialize a machine-independent block id (the pointer header)."""
    kind, a, b = logical
    buf.write_u8(kind)
    buf.write_u32(a)
    buf.write_u32(b)


def read_logical(buf: ReadBuffer) -> tuple:
    """Parse a machine-independent block id."""
    return (buf.read_u8(), buf.read_u32(), buf.read_u32())
