"""The machine-independent migration payload format.

Layout (all integers big-endian, strings u16-length-prefixed UTF-8):

.. code-block:: text

    header:
        u32  magic          'MIGR'
        u8   version
        str  source arch name
        u16  n_frames
        n_frames x (u32 func_index, u32 resume_pc)   # outermost first
    frame data (innermost frame first, matching the paper's example):
        per frame: u16 n_live, n_live x (u16 var_index, record)
    globals:
        u32 n_globals, n_globals x (u32 global_index, record)

A *record* describes one pointer target or variable (§3.2's "pointer
header and offset" format):

.. code-block:: text

    record := NULL
            | REF   logical ordinal
            | BLOCK logical type_id count ordinal contents
    logical := u8 kind, u32 a, u32 b        # the pointer header
    ordinal := u32                          # element offset in the block
    contents := u8 FLAG_FLAT, raw xdr bytes           # dense primitive runs
              | u8 0, per-cell (xdr scalar | record)  # general blocks

A ``BLOCK`` appears for the first (depth-first) visit of each memory
block; every later reference is a ``REF``.  Cycles are safe because the
restorer registers the block mapping *before* reading its contents.

Streaming chunk frames
----------------------

When a payload is *streamed* (engine ``streaming=True``), it is cut into
chunks and each chunk ships inside a self-delimiting frame:

.. code-block:: text

    chunk frame:
        u32  magic        'MCHK'
        u32  seq          0-based, strictly consecutive per stream
        u32  payload_len  0 marks end-of-stream (no payload follows)
        u32  crc32        zlib CRC-32 of the payload bytes
        payload_len bytes of payload

A stream (and, prepended, a monolithic envelope) may additionally open
with one *trace-context frame* under magic ``'MCTX'`` — same header
layout, ``seq`` always 0, CRC over the body — carrying the sender's
trace identity (see :mod:`repro.obs.propagate`).  It is a control
frame, not data: it occupies no chunk sequence number, and a receiver
that does not understand tracing can skip it by its self-delimiting
length.

Frames make mid-stream damage a *typed* failure instead of garbage
reaching the restorer: a short read raises
:class:`TruncatedFrameError`, a bad magic or CRC raises
:class:`FrameCorruptError`, and a non-consecutive sequence number
(reordered, duplicated, or dropped frame) raises
:class:`FrameOrderError` — all subclasses of :class:`WireFrameError`.
The concatenated chunk payloads are byte-identical to the monolithic
payload, so everything above the framing layer is unchanged.

Adaptive compression
--------------------

Both framings have an opt-in compressed form (``migrate(...,
compress=True)`` / ``repro migrate --compress``):

- a chunk frame compressed with zlib ships under magic ``'MCHZ'``; its
  ``payload_len`` counts the *stored* (compressed) bytes while its
  ``crc32`` is computed over the **raw** payload, so end-to-end
  integrity semantics are exactly those of PR 2's raw frames;
- a monolithic payload ships inside a small ``'MIGZ'`` envelope
  (raw length + raw CRC-32 + zlib bytes); a raw payload always starts
  with the ``'MIGR'`` migration magic, so the two are self-describing.

Compression is *adaptive*: the sender keeps the compressed form only
when it shrinks the payload by at least :data:`MIN_COMPRESSION_GAIN`
(10%) — already-dense numeric data ships raw rather than paying
decompression for nothing.  The receiver accepts both forms
unconditionally (the frame magic is the negotiation), so a compressing
sender interoperates with any PR 2-era stream consumer path.  With
compression off the bytes are identical to PR 2.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro import obs
from repro.arch.buffers import ReadBuffer, WriteBuffer

__all__ = [
    "MAGIC",
    "VERSION",
    "TAG_NULL",
    "TAG_REF",
    "TAG_BLOCK",
    "TAG_CACHED",
    "FLAG_FLAT",
    "WireHeader",
    "write_header",
    "read_header",
    "write_logical",
    "read_logical",
    "CHUNK_MAGIC",
    "CHUNK_MAGIC_Z",
    "CONTEXT_MAGIC",
    "CONTEXT_MAGIC_BYTES",
    "DELTA_MAGIC",
    "DELTA_MAGIC_BYTES",
    "CHUNK_HEADER_SIZE",
    "encode_context_frame",
    "decode_context_frame",
    "peel_context_frame",
    "MIN_COMPRESSION_GAIN",
    "WireFrameError",
    "TruncatedFrameError",
    "FrameCorruptError",
    "FrameOrderError",
    "encode_chunk",
    "encode_chunk_parts",
    "encode_end_of_stream",
    "decode_chunk",
    "ChunkDecoder",
    "encode_delta_parts",
    "encode_delta_end",
    "decode_delta_chunk",
    "DeltaDecoder",
    "PAYLOAD_MAGIC_Z",
    "compress_payload",
    "expand_payload",
]

MAGIC = 0x4D494752  # 'MIGR'
VERSION = 1

TAG_NULL = 0
TAG_REF = 1
TAG_BLOCK = 2
#: pre-copy stop-and-copy only: the block's contents already live on the
#: destination (shipped by a delta round and clean since); the record
#: carries the logical id + ordinal and then one record per pointer cell
#: (so the DFS still reaches blocks behind it), but no scalar contents
TAG_CACHED = 3

FLAG_FLAT = 1


@dataclass
class WireHeader:
    """Execution-state header of a migration payload."""

    source_arch: str
    #: (function index, resume pc) outermost frame first
    frames: list[tuple[int, int]]
    version: int = VERSION


def write_header(buf: WriteBuffer, header: WireHeader) -> None:
    """Serialize the payload header (magic, arch, frame table)."""
    buf.write_u32(MAGIC)
    buf.write_u8(header.version)
    buf.write_str(header.source_arch)
    buf.write_u16(len(header.frames))
    for func_idx, resume_pc in header.frames:
        buf.write_u32(func_idx)
        buf.write_u32(resume_pc)


def read_header(buf: ReadBuffer) -> WireHeader:
    """Parse and validate the payload header."""
    magic = buf.read_u32()
    if magic != MAGIC:
        raise ValueError(f"bad migration payload magic {magic:#x}")
    version = buf.read_u8()
    if version != VERSION:
        raise ValueError(f"unsupported payload version {version}")
    source_arch = buf.read_str()
    n = buf.read_u16()
    frames = [(buf.read_u32(), buf.read_u32()) for _ in range(n)]
    return WireHeader(source_arch=source_arch, frames=frames, version=version)


def write_logical(buf: WriteBuffer, logical: tuple) -> None:
    """Serialize a machine-independent block id (the pointer header)."""
    kind, a, b = logical
    buf.write_u8(kind)
    buf.write_u32(a)
    buf.write_u32(b)


def read_logical(buf: ReadBuffer) -> tuple:
    """Parse a machine-independent block id."""
    return (buf.read_u8(), buf.read_u32(), buf.read_u32())


# -- streaming chunk frames ---------------------------------------------------

CHUNK_MAGIC = 0x4D43484B  # 'MCHK' — raw payload
CHUNK_MAGIC_Z = 0x4D43485A  # 'MCHZ' — zlib-compressed payload
_CHUNK_HEADER = struct.Struct(">IIII")  # magic, seq, payload_len, crc32
CHUNK_HEADER_SIZE = _CHUNK_HEADER.size

#: a compressed form is kept only when it shrinks the payload this much
MIN_COMPRESSION_GAIN = 0.10


class WireFrameError(Exception):
    """A streamed chunk frame is damaged or out of protocol."""


class TruncatedFrameError(WireFrameError):
    """A frame (header or payload) was cut short mid-stream.

    Deliberately NOT an :class:`EOFError`: a reader probing for a clean
    end of stream (``StreamReadBuffer.at_end``) treats ``EOFError`` as
    "stream over", and a truncated frame must never pass for that.
    """


class FrameCorruptError(WireFrameError):
    """A frame's magic or CRC-32 does not check out."""


class FrameOrderError(WireFrameError):
    """Frames arrived out of sequence (reordered, duplicated, or lost)."""


def encode_chunk_parts(
    seq: int, payload: bytes | bytearray | memoryview, compress: bool = False
) -> tuple[bytes, bytes | bytearray | memoryview]:
    """Frame one non-empty payload chunk as ``(header, body)``.

    Zero-copy form of :func:`encode_chunk`: *payload* may be any
    buffer-protocol object (``WriteBuffer.drain`` hands out
    ``memoryview``s) and, unless compression engages, it is returned as
    the body **unchanged** — the CRC is computed over the view and no
    intermediate ``bytes`` is built.  Channels with vectored sends ship
    the two parts back to back; others join them once at the syscall
    boundary.

    With *compress*, the payload is deflated and the compressed form is
    kept only if it is at least :data:`MIN_COMPRESSION_GAIN` smaller
    (adaptive skip — incompressible chunks ship raw under the ordinary
    magic).  The CRC-32 always covers the **raw** payload.
    """
    if not payload:
        raise ValueError("empty chunk payload is reserved for end-of-stream")
    crc = zlib.crc32(payload)
    if compress:
        packed = zlib.compress(payload)
        if len(packed) <= len(payload) * (1.0 - MIN_COMPRESSION_GAIN):
            return _CHUNK_HEADER.pack(CHUNK_MAGIC_Z, seq, len(packed), crc), packed
    return _CHUNK_HEADER.pack(CHUNK_MAGIC, seq, len(payload), crc), payload


def encode_chunk(
    seq: int, payload: bytes | bytearray | memoryview, compress: bool = False
) -> bytes:
    """Wrap one non-empty payload chunk in a single contiguous frame
    (join wrapper over :func:`encode_chunk_parts`)."""
    header, body = encode_chunk_parts(seq, payload, compress)
    return b"".join((header, body))


def encode_end_of_stream(seq: int) -> bytes:
    """The terminator frame: ``payload_len == 0``, no payload bytes."""
    return _CHUNK_HEADER.pack(CHUNK_MAGIC, seq, 0, 0)


def decode_chunk(
    frame: bytes | bytearray | memoryview,
) -> tuple[int, bytes | memoryview]:
    """Validate and unwrap one complete frame.

    Returns ``(seq, payload)``; an end-of-stream frame yields
    ``(seq, b"")``.  For an uncompressed frame the payload is a
    zero-copy ``memoryview`` into *frame* (the caller owns the frame
    bytes, so the view lives as long as they do); compressed frames
    necessarily inflate into fresh ``bytes``.  Raises the typed errors
    documented in the module docstring; sequence checking is the
    caller's job (see :class:`ChunkDecoder`) because only the caller
    knows stream state.
    """
    frame = memoryview(frame)
    if len(frame) < CHUNK_HEADER_SIZE:
        raise TruncatedFrameError(
            f"chunk frame header truncated: {len(frame)} of "
            f"{CHUNK_HEADER_SIZE} bytes"
        )
    magic, seq, length, crc = _CHUNK_HEADER.unpack_from(frame, 0)
    if magic not in (CHUNK_MAGIC, CHUNK_MAGIC_Z):
        raise FrameCorruptError(f"bad chunk frame magic {magic:#010x}")
    body = frame[CHUNK_HEADER_SIZE:]
    if len(body) != length:
        raise TruncatedFrameError(
            f"chunk {seq} claims {length} payload bytes, frame carries {len(body)}"
        )
    payload: bytes | memoryview = body
    if length == 0:
        if magic != CHUNK_MAGIC:
            raise FrameCorruptError(
                f"end-of-stream frame {seq} must use the raw chunk magic"
            )
        if crc != 0:
            raise FrameCorruptError(f"end-of-stream frame {seq} has nonzero CRC")
        return seq, b""
    if magic == CHUNK_MAGIC_Z:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise FrameCorruptError(
                f"chunk {seq} compressed payload is undecodable: {exc}"
            ) from None
    actual = zlib.crc32(payload)
    if actual != crc:
        raise FrameCorruptError(
            f"chunk {seq} CRC mismatch: header {crc:#010x}, payload {actual:#010x}"
        )
    return seq, payload


class ChunkDecoder:
    """Stream-side frame validation: decode + strict sequence checking.

    Feed complete frames in arrival order via :meth:`decode`; it returns
    the payload, or ``None`` for the end-of-stream frame.  Any gap,
    duplicate, or backward jump in sequence numbers raises
    :class:`FrameOrderError`; frames after end-of-stream raise too.
    """

    def __init__(self) -> None:
        self.expected_seq = 0
        self.finished = False
        #: seconds spent inflating compressed ('MCHZ') frames
        self.codec_seconds = 0.0

    def decode(self, frame: bytes | bytearray | memoryview) -> bytes | None:
        if self.finished:
            raise FrameOrderError("chunk frame arrived after end-of-stream")
        if bytes(memoryview(frame)[:4]) == b"MCHZ":
            with obs.lap("codec.inflate") as timed:
                seq, payload = decode_chunk(frame)
            self.codec_seconds += timed.seconds
        else:
            seq, payload = decode_chunk(frame)
        if seq != self.expected_seq:
            raise FrameOrderError(
                f"chunk sequence break: expected {self.expected_seq}, got {seq}"
            )
        self.expected_seq += 1
        if not payload:
            self.finished = True
            return None
        return payload


# -- trace-context control frames ---------------------------------------------

CONTEXT_MAGIC = 0x4D435458  # 'MCTX' — trace-context control frame
CONTEXT_MAGIC_BYTES = b"MCTX"


def encode_context_frame(body: bytes) -> bytes:
    """Wrap a trace-context body in a control frame.

    Same header layout as a chunk frame (so socket readers reuse their
    fixed-size header read), but a *control* frame: ``seq`` is always 0
    and it does not participate in chunk sequencing.
    """
    return _CHUNK_HEADER.pack(CONTEXT_MAGIC, 0, len(body), zlib.crc32(body)) + body


def decode_context_frame(frame: bytes | bytearray | memoryview) -> bytes:
    """Validate and unwrap one trace-context frame; returns the body."""
    frame = memoryview(frame)
    if len(frame) < CHUNK_HEADER_SIZE:
        raise TruncatedFrameError(
            f"context frame header truncated: {len(frame)} of "
            f"{CHUNK_HEADER_SIZE} bytes"
        )
    magic, _seq, length, crc = _CHUNK_HEADER.unpack_from(frame, 0)
    if magic != CONTEXT_MAGIC:
        raise FrameCorruptError(f"bad context frame magic {magic:#010x}")
    body = frame[CHUNK_HEADER_SIZE:]
    if len(body) != length:
        raise TruncatedFrameError(
            f"context frame claims {length} body bytes, frame carries {len(body)}"
        )
    body = bytes(body)
    actual = zlib.crc32(body)
    if actual != crc:
        raise FrameCorruptError(
            f"context frame CRC mismatch: header {crc:#010x}, body {actual:#010x}"
        )
    return body


def peel_context_frame(data: bytes) -> tuple[bytes | None, bytes]:
    """Split a monolithic message into ``(context_body, rest)``.

    A message that does not *start* with the context magic peels to
    ``(None, data)`` unchanged — raw ('MIGR') and compressed ('MIGZ')
    payloads are self-describing by their own magics, so prepending the
    context frame costs no negotiation.
    """
    if len(data) < CHUNK_HEADER_SIZE or data[:4] != CONTEXT_MAGIC_BYTES:
        return None, data
    _magic, _seq, length, _crc = _CHUNK_HEADER.unpack_from(data, 0)
    end = CHUNK_HEADER_SIZE + length
    if len(data) < end:
        raise TruncatedFrameError(
            f"context frame claims {length} body bytes, message carries "
            f"{len(data) - CHUNK_HEADER_SIZE}"
        )
    return decode_context_frame(data[:end]), data[end:]


# -- pre-copy delta chunk frames ----------------------------------------------

DELTA_MAGIC = 0x4D444C54  # 'MDLT' — pre-copy delta round chunk
DELTA_MAGIC_BYTES = b"MDLT"


def encode_delta_parts(
    seq: int, payload: bytes | bytearray | memoryview
) -> tuple[bytes, bytes | bytearray | memoryview]:
    """Frame one non-empty delta-round chunk as ``(header, body)``.

    Same header layout as a data chunk frame (magic, seq, payload_len,
    CRC-32 over the raw bytes) under the fresh ``'MDLT'`` magic, so the
    socket reader reuses its fixed-size header read.  The sequence space
    is *per round*: every round starts at 0 and is closed by
    :func:`encode_delta_end`.  Delta frames are deliberately raw-only —
    rounds are small (only-dirty blocks) and the adaptive-compression
    negotiation would buy little while doubling the magic matrix.
    """
    if not payload:
        raise ValueError("empty delta payload is reserved for end-of-round")
    return _CHUNK_HEADER.pack(DELTA_MAGIC, seq, len(payload), zlib.crc32(payload)), payload


def encode_delta_end(seq: int) -> bytes:
    """The round terminator frame: ``payload_len == 0``, no payload."""
    return _CHUNK_HEADER.pack(DELTA_MAGIC, seq, 0, 0)


def decode_delta_chunk(
    frame: bytes | bytearray | memoryview,
) -> tuple[int, bytes | memoryview]:
    """Validate and unwrap one delta frame; ``(seq, b"")`` at end-of-round.

    The payload is a zero-copy ``memoryview`` into *frame* (the caller
    owns the frame bytes).  Raises the same typed error family as
    :func:`decode_chunk`.
    """
    frame = memoryview(frame)
    if len(frame) < CHUNK_HEADER_SIZE:
        raise TruncatedFrameError(
            f"delta frame header truncated: {len(frame)} of "
            f"{CHUNK_HEADER_SIZE} bytes"
        )
    magic, seq, length, crc = _CHUNK_HEADER.unpack_from(frame, 0)
    if magic != DELTA_MAGIC:
        raise FrameCorruptError(f"bad delta frame magic {magic:#010x}")
    body = frame[CHUNK_HEADER_SIZE:]
    if len(body) != length:
        raise TruncatedFrameError(
            f"delta chunk {seq} claims {length} payload bytes, "
            f"frame carries {len(body)}"
        )
    if length == 0:
        if crc != 0:
            raise FrameCorruptError(f"end-of-round frame {seq} has nonzero CRC")
        return seq, b""
    actual = zlib.crc32(body)
    if actual != crc:
        raise FrameCorruptError(
            f"delta chunk {seq} CRC mismatch: header {crc:#010x}, "
            f"payload {actual:#010x}"
        )
    return seq, body


class DeltaDecoder:
    """Receive-side delta frame validation for one pre-copy round.

    Mirrors :class:`ChunkDecoder`'s strict consecutive-sequence rule,
    but over the per-round sequence space: the transport replaces the
    decoder at every end-of-round, so each round independently starts
    at sequence 0.
    """

    def __init__(self) -> None:
        self.expected_seq = 0
        self.finished = False

    def decode(self, frame: bytes | bytearray | memoryview) -> bytes | None:
        if self.finished:
            raise FrameOrderError("delta frame arrived after end-of-round")
        seq, payload = decode_delta_chunk(frame)
        if seq != self.expected_seq:
            raise FrameOrderError(
                f"delta sequence break: expected {self.expected_seq}, got {seq}"
            )
        self.expected_seq += 1
        if not payload:
            self.finished = True
            return None
        return payload


# -- monolithic payload compression -------------------------------------------

PAYLOAD_MAGIC_Z = 0x4D49475A  # 'MIGZ' — compressed monolithic envelope
_PAYLOAD_Z_HEADER = struct.Struct(">III")  # magic, raw_len, crc32(raw)


def compress_payload(payload: bytes) -> bytes:
    """Adaptively compress a monolithic payload.

    Returns a ``'MIGZ'`` envelope when zlib shrinks the payload by at
    least :data:`MIN_COMPRESSION_GAIN`, otherwise the payload unchanged.
    Raw payloads start with the ``'MIGR'`` migration magic, so
    :func:`expand_payload` can tell the two apart without negotiation.
    """
    packed = zlib.compress(payload)
    stored = _PAYLOAD_Z_HEADER.size + len(packed)
    if stored <= len(payload) * (1.0 - MIN_COMPRESSION_GAIN):
        return (
            _PAYLOAD_Z_HEADER.pack(PAYLOAD_MAGIC_Z, len(payload), zlib.crc32(payload))
            + packed
        )
    return payload


def expand_payload(data: bytes) -> bytes:
    """Undo :func:`compress_payload` — a no-op for raw payloads."""
    if len(data) < _PAYLOAD_Z_HEADER.size or data[:4] != b"MIGZ":
        return data
    _, raw_len, crc = _PAYLOAD_Z_HEADER.unpack_from(data, 0)
    try:
        payload = zlib.decompress(data[_PAYLOAD_Z_HEADER.size :])
    except zlib.error as exc:
        raise FrameCorruptError(f"compressed payload is undecodable: {exc}") from None
    if len(payload) != raw_len:
        raise FrameCorruptError(
            f"compressed payload inflated to {len(payload)} bytes, "
            f"envelope claims {raw_len}"
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise FrameCorruptError(
            f"payload CRC mismatch: envelope {crc:#010x}, payload {actual:#010x}"
        )
    return payload
