"""Compiled whole-graph collect/restore plans (DESIGN.md §12).

PR 3's codecs vectorized the *contents* of one block; the graph walk
itself — pointer discovery, MSRLT search, record emission — stayed a
per-cell Python loop.  This module compiles the walk:

- :class:`SortedArena` — the MSRLT's blocks snapshotted into parallel
  NumPy columns (starts, ends, kinds, logical ids, type keys, counts)
  so *every pointer in a block* translates to ``(logical id, offset)``
  with one ``numpy.searchsorted`` instead of one bisect per pointer.
  Stamped with the table's mutation generation: register/unregister
  invalidates it and the scalar last-hit cache by the same rule.

- :class:`FlatPlan` — zero-copy bulk path: a host-dtype view over the
  block's segment window cast straight into the wire buffer's storage
  (collect), and a wire-dtype view over the read window assigned into
  the segment (restore).  No intermediate ``bytes`` on either side.

- :class:`PtrArrayPlan` — for blocks that are dense pointer arrays
  (``cell *hot[64]``): gather every pointer value with one
  ``frombuffer``, classify NULL / REF (visited target) / BLOCK
  (unvisited target) vectorized, and emit whole same-class runs as one
  structured-array write.  Unvisited targets still recurse through the
  reference traversal (they must — their contents follow on the wire).

- :class:`ChainPlan` — for linked-list-shaped structs (tail cell is a
  pointer): on collect, a speculative stride walk discovers the whole
  chain of equally-spaced heap nodes at once, validates eligibility
  against the arena columns, and emits ``m`` records as one structured
  row array; on restore, the row array is parsed back vectorized, the
  nodes are carved with one bulk heap allocation + one bulk MSRLT
  slice-insert, and the contents land with one scatter write.

Every plan produces and consumes bytes *identical* to the per-cell
reference path — each decision point either batches or falls back to
the reference functions mid-stream, never both for the same record —
and the per-element eligibility rules (visited marks, address parity of
the destination allocator, padding ordinals, dangling pointers) are
checked *before* any bytes are written so a decline is always clean.
``TITable.graphplan_enabled = False`` disables compilation wholesale;
plans are also bypassed whenever an attribution profiler is active so
PR 5's exact per-type byte partition keeps its meaning.
"""

from __future__ import annotations

import struct
from bisect import bisect_right

import numpy as np

from repro.arch import xdr
from repro.msr.msrlt import BlockKind, MSRLTError

__all__ = [
    "SortedArena",
    "FlatPlan",
    "PtrArrayPlan",
    "ChainPlan",
    "compile_plan",
    "NO_PLAN",
]

#: TypeInfo.plan value meaning "compiled: no plan applies"
NO_PLAN = object()

#: smallest pointer-array / flat block worth the NumPy call overhead
#: (below this the scalar loop is faster; payload bytes are identical
#: either way, so the threshold is purely a performance choice)
MIN_BULK_CELLS = 16
#: smallest chain batch worth the collect-side NumPy round-trip.  The
#: scalar pre-walk in :meth:`ChainPlan.save_tail` must find this many
#: linked nodes before anything is vectorized, so tree-shaped data
#: (whose "chains" are 2-3 coincidentally adjacent allocations) stays
#: on the cheap reference path.
MIN_CHAIN = 4
#: smallest row run worth a batched restore.  Restore rows are
#: self-describing (no speculation), so the overhead floor is lower.
RESTORE_MIN_CHAIN = 2
#: deterministic engagement backoff: after this many *consecutive*
#: declined chain attempts the plan stops even pre-walking for the next
#: CHAIN_BACKOFF_SKIP tail pointers (tree-shaped data declines every
#: time; without backoff the per-tail attempt cost adds up).  Any
#: successful batch resets both counters, so a long list that follows a
#: tree re-engages within ~CHAIN_BACKOFF_SKIP nodes.  Purely a timing
#: choice — the emitted/consumed bytes never depend on engagement.
CHAIN_BACKOFF_MISSES = 8
CHAIN_BACKOFF_SKIP = 512

_TAG_NULL = 0
_TAG_REF = 1
_TAG_BLOCK = 2

#: one wire REF record: tag, logical (kind,a,b), ordinal — 14 bytes
REF_DTYPE = np.dtype(
    [("tag", "u1"), ("lk", "u1"), ("la", ">u4"), ("lb", ">u4"), ("ord", ">u4")]
)

_DANGLING = (
    "pointer {value:#x} does not refer to any live memory block; "
    "the program stored a dangling or fabricated address, which is "
    "migration-unsafe"
)


class SortedArena:
    """Immutable columnar snapshot of an MSRLT's sorted block arrays.

    Built lazily by :meth:`MSRLT.arena` and cached until the table's
    generation moves; ``lookup`` is the vectorized twin of
    ``MSRLT.lookup_addr`` (same start-preference and one-past-end
    semantics — see INTERNALS §14 for the equivalence argument).
    """

    __slots__ = (
        "generation", "blocks", "starts", "ends", "kinds",
        "la", "lb", "tkeys", "counts",
        "starts_l", "kinds_l", "tkeys_l", "counts_l",
    )

    def __init__(self, blocks, generation: int) -> None:
        self.generation = generation
        self.blocks = list(blocks)  # aligned with the columns below
        # plain-list mirrors for the scalar pre-walk: per-call `bisect`
        # on a list beats `np.searchsorted` on one address, and the
        # pre-walk runs once per tail pointer that *might* start a chain
        self.starts_l = [b.addr for b in blocks]
        self.kinds_l = [int(b.logical[0]) for b in blocks]
        #: elem_type identity per block — the MemoryBlock objects in
        #: ``blocks`` keep the type objects alive, so ids cannot recycle
        self.tkeys_l = [id(b.elem_type) for b in blocks]
        self.counts_l = [b.count for b in blocks]
        # the NumPy columns cost ~2µs/block to build; workloads whose
        # chains never pass the scalar pre-walk must not pay for them,
        # so they materialize on the first vectorized lookup
        self.starts = None
        self.ends = None
        self.kinds = None
        self.la = None
        self.lb = None
        self.tkeys = None
        self.counts = None

    def _materialize(self) -> None:
        blocks = self.blocks
        n = len(blocks)
        self.starts = np.array(self.starts_l, np.int64)
        self.ends = self.starts + np.fromiter(
            (b.size for b in blocks), np.int64, count=n
        )
        self.kinds = np.array(self.kinds_l, np.uint8)
        self.la = np.fromiter((b.logical[1] for b in blocks), np.int64, count=n)
        self.lb = np.fromiter((b.logical[2] for b in blocks), np.int64, count=n)
        self.tkeys = np.array(self.tkeys_l, np.uint64)
        self.counts = np.array(self.counts_l, np.int64)

    def __len__(self) -> int:
        return len(self.blocks)

    def lookup(self, addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized address→block search.

        Returns ``(indexes, offsets)`` into this arena; ``indexes[k] ==
        -1`` where ``addrs[k]`` resolves to no block (the scalar path
        raises there).  ``searchsorted(..., side="right") - 1`` lands on
        the last block whose start is ≤ addr, which — because block
        starts are unique and no block is zero-sized — is exactly the
        block the scalar path's bisect + one-past-end fallback picks:
        an address that is both block *i*'s end and block *j*'s start
        indexes *j* directly (start preference for free).
        """
        if self.starts is None:
            self._materialize()
        if len(self.starts) == 0:
            # empty arena (e.g. bulk lookup after drop_stack_blocks on a
            # heap-free program): nothing resolves
            n = len(addrs)
            return np.full(n, -1, np.intp), np.zeros(n, np.int64)
        idx = np.searchsorted(self.starts, addrs, side="right") - 1
        safe = np.maximum(idx, 0)
        contained = (idx >= 0) & (addrs <= self.ends[safe])
        idx = np.where(contained, idx, -1)
        offs = np.where(contained, addrs - self.starts[safe], 0)
        return idx, offs


def _unique_inverse(a: np.ndarray):
    """``np.unique(a, return_inverse=True)`` with a fast path for the
    overwhelmingly common case of a single distinct value (a whole run
    of pointers into one array) — skips the O(n log n) sort."""
    if bool((a == a[0]).all()):
        return a[:1], np.zeros(a.shape[0], np.intp)
    return np.unique(a, return_inverse=True)


def _unique_rows(trip: np.ndarray) -> np.ndarray:
    """``np.unique(trip, axis=0)`` with the same single-group fast path
    (the axis-0 form sorts void records, which is disproportionately
    slow)."""
    if bool((trip == trip[0]).all()):
        return trip[:1]
    return np.unique(trip, axis=0)


def vec_byte_to_ordinal(info, offs: np.ndarray, count: int):
    """Vectorized ``TypeInfo.byte_to_ordinal`` — ``None`` if any offset
    lands in padding (the scalar path raises ``ValueError`` there; the
    caller falls back per-cell so the reference error surfaces)."""
    total_units = info.units_in(count)
    total_bytes = total_units * info.unit_size
    pastend = offs == total_bytes
    unit_idx = offs // info.unit_size
    within = offs - unit_idx * info.unit_size
    cell_offs = np.fromiter((c.offset for c in info.cells), np.int64,
                            count=info.cell_count)
    pos = np.searchsorted(cell_offs, within)
    safe = np.minimum(pos, info.cell_count - 1)
    ok = (pos < info.cell_count) & (cell_offs[safe] == within)
    if not bool(np.all(ok | pastend)):
        return None
    ords = unit_idx * info.cell_count + pos
    ords[pastend] = info.cells_in(count)
    return ords


def vec_ordinal_to_byte(info, ords: np.ndarray, count: int) -> np.ndarray:
    """Vectorized ``TypeInfo.ordinal_to_byte`` (total, like the scalar)."""
    pastend = ords == info.cells_in(count)
    unit_idx = ords // info.cell_count
    within = ords - unit_idx * info.cell_count
    cell_offs = np.fromiter((c.offset for c in info.cells), np.int64,
                            count=info.cell_count)
    res = unit_idx * info.unit_size + cell_offs[within]
    res[pastend] = info.units_in(count) * info.unit_size
    return res


def _true_prefix(mask: np.ndarray) -> int:
    """Length of the leading all-True run of a boolean array."""
    bad = np.flatnonzero(~mask)
    return int(bad[0]) if bad.size else int(mask.size)


# -- flat blocks --------------------------------------------------------------


class FlatPlan:
    """Zero-copy bulk path for homogeneous dense primitive blocks."""

    KIND = "flat"
    __slots__ = ("kind", "host_dtype", "wire_dtype")

    def __init__(self, info, layout) -> None:
        self.kind = info.flat_kind
        self.host_dtype = xdr.host_np_dtype(self.kind, layout.arch)
        self.wire_dtype = xdr.wire_dtype(self.kind)

    def save(self, collector, block, info) -> bool:
        n = info.cells_in(block.count)
        if n < MIN_BULK_CELLS:
            return False
        memory = collector.memory
        raw = memory.view(block.addr, n * self.host_dtype.itemsize)
        if self.host_dtype == self.wire_dtype:
            # host representation IS the wire representation (same width,
            # same byte order): one memcpy into the wire storage
            collector.buf.write(raw)
            return True
        src = np.frombuffer(raw, dtype=self.host_dtype, count=n)
        # cast straight into the wire buffer's storage: the only copy is
        # the conversion itself (save_flat does read-copy + encode-copy)
        collector.buf.write_ndarray(src, self.wire_dtype)
        del src
        return True

    def restore(self, restorer, block, info) -> bool:
        n = info.cells_in(block.count)
        if n < MIN_BULK_CELLS:
            return False
        nbytes = n * self.wire_dtype.itemsize
        if self.host_dtype == self.wire_dtype:
            # host representation IS the wire representation: fill the
            # destination span straight from the wire.  On a streamed
            # restore this copies each arriving chunk directly into the
            # segment window — no intermediate join, one copy total
            dest = restorer.memory.write_view(block.addr, nbytes)
            restorer.buf.readinto(dest)
            return True
        raw = restorer.buf.read(nbytes)
        src = np.frombuffer(raw, dtype=self.wire_dtype, count=n)
        # transient writable view over the segment window (materialized
        # first, so no resize can happen while the view is alive)
        dst = restorer.memory.array_view(self.kind, block.addr, n)
        dst[:] = src
        del dst
        return True


# -- pointer arrays -----------------------------------------------------------


class PtrArrayPlan:
    """Run-batched save/restore for dense pointer-array blocks."""

    KIND = "ptr_array"
    __slots__ = ("ptr_size",)

    def __init__(self, info, layout) -> None:
        self.ptr_size = layout.arch.ptr_size

    # -- collect --------------------------------------------------------------

    def save(self, collector, block, info) -> bool:
        n = info.cells_in(block.count)
        if n < MIN_BULK_CELLS:
            return False
        memory = collector.memory
        msrlt = collector.msrlt
        host = memory.np_dtype("ptr")
        raw = memory.view(block.addr, n * host.itemsize)
        vals = np.frombuffer(raw, dtype=host, count=n).astype(np.int64)
        del raw
        arena = msrlt.arena()
        idx = np.full(n, -1, np.int64)
        offs = np.zeros(n, np.int64)
        nonnull = vals != 0
        if bool(nonnull.any()):
            i2, o2 = arena.lookup(vals[nonnull])
            if bool(np.any(i2 < 0)):
                # a dangling pointer somewhere in the array: decline the
                # whole block so the reference loop raises the canonical
                # error at the right element (no searches counted here)
                return False
            idx[nonnull] = i2
            offs[nonnull] = o2
        visited = collector._visited
        # classify: 0 = NULL, 1 = REF (target visited), 2 = BLOCK
        cls = np.zeros(n, np.uint8)
        if bool(nonnull.any()):
            uniq, inv = _unique_inverse(idx[nonnull])
            seen = np.fromiter(
                (arena.blocks[i].logical in visited for i in uniq),
                np.bool_, count=len(uniq),
            )
            cls[nonnull] = np.where(seen[inv], 1, 2)
        buf = collector.buf
        stats = collector.stats
        p = 0
        while p < n:
            c = int(cls[p])
            if c == 2:
                blk = arena.blocks[int(idx[p])]
                if blk.logical in visited:
                    # became visited through an earlier element's recursion
                    cls[p] = 1
                    continue
                # unvisited target: the reference traversal must emit the
                # BLOCK record and its contents (counts its own search)
                collector.save_pointer(int(vals[p]))
                p += 1
                continue
            brk = np.flatnonzero(cls[p:] != c)
            q = p + (int(brk[0]) if brk.size else n - p)
            if c == 0:
                buf.write(bytes(q - p))  # a NULL record is one zero byte
                stats.n_nulls += q - p
            else:
                self._emit_ref_run(collector, arena, vals, idx, offs, p, q)
            p = q
        return True

    def _emit_ref_run(self, collector, arena, vals, idx, offs, p, q) -> None:
        m = q - p
        run_idx = idx[p:q]
        run_off = offs[p:q]
        uniq, inv = _unique_inverse(run_idx)
        ords = np.empty(m, np.int64)
        for j, bi in enumerate(uniq):
            blk = arena.blocks[int(bi)]
            tinfo = collector.ti.info_for(blk.elem_type)
            sel = inv == j
            o = vec_byte_to_ordinal(tinfo, run_off[sel], blk.count)
            if o is None:
                # padding-offset pointer: replay the run through the
                # reference path so its ValueError fires at the exact
                # element (earlier elements emit identical REF bytes)
                for v in vals[p:q]:
                    collector.save_pointer(int(v))
                return
            ords[sel] = o
        rows = np.empty(m, REF_DTYPE)
        rows["tag"] = _TAG_REF
        rows["lk"] = arena.kinds[run_idx]
        rows["la"] = arena.la[run_idx]
        rows["lb"] = arena.lb[run_idx]
        rows["ord"] = ords
        collector.buf.write(rows.tobytes())
        collector.msrlt.n_searches += m  # one search per translated pointer
        collector.stats.n_refs += m

    # -- restore --------------------------------------------------------------

    def restore(self, restorer, block, info) -> bool:
        n = info.cells_in(block.count)
        if n < MIN_BULK_CELLS:
            return False
        buf = restorer.buf
        stats = restorer.stats
        out = np.zeros(n, np.uint64)
        p = 0
        while p < n:
            tag = buf.peek_u8()
            if tag == _TAG_NULL:
                window = buf.buffered()
                v = np.frombuffer(window, np.uint8,
                                  count=min(n - p, len(window)))
                nz = np.flatnonzero(v)
                run = int(nz[0]) if nz.size else len(v)
                buf.read(run)
                stats.n_nulls += run
                p += run
            elif tag == _TAG_REF:
                p = self._restore_ref_run(restorer, out, p, n)
            else:
                # BLOCK (recurse through the reference path) or a bad
                # tag (the reference path raises the canonical error)
                out[p] = restorer.restore_pointer()
                p += 1
        dst = restorer.memory.array_view("ptr", block.addr, n)
        dst[:] = out
        del dst
        return True

    def _restore_ref_run(self, restorer, out, p, n) -> int:
        buf = restorer.buf
        window = buf.buffered()
        k = min(n - p, len(window) // REF_DTYPE.itemsize)
        if k == 0:
            # record straddles a stream chunk boundary: scalar path pulls
            out[p] = restorer.restore_pointer()
            return p + 1
        rows = np.frombuffer(window, REF_DTYPE, count=k)
        m = _true_prefix(rows["tag"] == _TAG_REF)
        dests = np.zeros(m, np.uint64)
        trip = np.stack(
            [
                rows["lk"][:m].astype(np.int64),
                rows["la"][:m].astype(np.int64),
                rows["lb"][:m].astype(np.int64),
            ],
            axis=1,
        )
        for u in _unique_rows(trip):
            key = (int(u[0]), int(u[1]), int(u[2]))
            sel = np.all(trip == u, axis=1)
            tblock = restorer._mapping.get(key)
            if tblock is None:
                # REF to a block this payload never defined: stop the
                # batch before the first offender; the scalar path will
                # raise the canonical RestoreError on it
                m = min(m, int(np.flatnonzero(sel)[0]))
                continue
            tinfo = restorer.ti.info_for(tblock.elem_type)
            byte = vec_ordinal_to_byte(
                tinfo, rows["ord"][: len(sel)][sel].astype(np.int64), tblock.count
            )
            dests[sel] = tblock.addr + byte
        if m == 0:
            out[p] = restorer.restore_pointer()
            return p + 1
        out[p : p + m] = dests[:m]
        buf.read(m * REF_DTYPE.itemsize)
        restorer.stats.n_refs += m
        return p + m


# -- linked chains ------------------------------------------------------------


class ChainPlan:
    """Stride-speculative batching for linked-list-shaped structs.

    Compiled for per-cell unit types whose *last* cell is a pointer
    (``struct probe {cell *target; int strength; probe *next}``).  One
    wire row is the fixed-size image of one chain node's BLOCK record:
    header + flag byte + each non-tail cell (scalars in wire encoding,
    pointers as full REF records).  The tail pointer of node *k* IS the
    record of node *k+1*, so ``m`` nodes serialize as exactly ``m``
    consecutive rows followed by the last node's tail record.
    """

    KIND = "chain"
    __slots__ = (
        "info", "tail_off", "ptr_size", "row_dtype", "row_size",
        "cols", "n_ptr_cols", "host_dtype_cache", "host_fields", "size",
        "_hdr", "_ptr_tag_offs",
    )

    def __init__(self, info, layout) -> None:
        arch = layout.arch
        self.info = info
        self.size = info.size
        self.tail_off = info.cells[-1].offset
        self.ptr_size = arch.ptr_size
        fields = [
            ("tag", "u1"), ("lk", "u1"), ("la", ">u4"), ("lb", ">u4"),
            ("tid", ">u4"), ("cnt", ">u4"), ("ord", ">u4"), ("flag", "u1"),
        ]
        #: ("ptr"|"scalar", cell, wire field name(s) prefix)
        self.cols = []
        for j, c in enumerate(info.cells[:-1]):
            if c.kind == "ptr":
                fields += [
                    (f"p{j}t", "u1"), (f"p{j}k", "u1"),
                    (f"p{j}a", ">u4"), (f"p{j}b", ">u4"), (f"p{j}o", ">u4"),
                ]
                self.cols.append(("ptr", c, f"p{j}"))
            else:
                fields.append((f"c{j}", xdr.wire_dtype(c.kind)))
                self.cols.append(("scalar", c, f"c{j}"))
        self.row_dtype = np.dtype(fields)
        self.row_size = self.row_dtype.itemsize
        self.n_ptr_cols = sum(1 for k, _, _ in self.cols if k == "ptr")
        # scalar mirrors of the vectorized row validation, for the
        # cheap pre-check in try_restore: the fixed header prefix
        # (tag, logical kind/a/b, type id, count, ordinal, flag) plus
        # the byte offset of every REF column's tag
        self._hdr = struct.Struct(">BBIIIIIB")
        self._ptr_tag_offs = tuple(
            self.row_dtype.fields[f"{name}t"][1]
            for k, _, name in self.cols
            if k == "ptr"
        )
        #: host structured dtypes (all cells at their real offsets, one
        #: field per cell plus the tail) keyed by element stride
        self.host_dtype_cache: dict[int, np.dtype] = {}
        self.host_fields = tuple(
            (f"h{j}", xdr.host_np_dtype(c.kind, arch), c.offset)
            for j, c in enumerate(info.cells)
        )

    def _host_dtype(self, stride: int) -> np.dtype:
        dt = self.host_dtype_cache.get(stride)
        if dt is None:
            dt = np.dtype({
                "names": [f[0] for f in self.host_fields],
                "formats": [f[1] for f in self.host_fields],
                "offsets": [f[2] for f in self.host_fields],
                "itemsize": stride,
            })
            self.host_dtype_cache[stride] = dt
        return dt

    # -- collect --------------------------------------------------------------

    def save_tail(self, collector, value: int) -> None:
        """Handle the tail-pointer record of the current element —
        batched continuation when a stride chain is found, the reference
        path otherwise.  Always emits exactly what ``save_pointer``
        would."""
        if value == 0:
            collector.save_pointer(0)
            return
        if collector._chain_skip:
            collector._chain_skip -= 1
            collector.save_pointer(value)
            return
        if self._save_tail(collector, value):
            collector._chain_misses = 0
        else:
            misses = collector._chain_misses + 1
            if misses >= CHAIN_BACKOFF_MISSES:
                collector._chain_misses = 0
                collector._chain_skip = CHAIN_BACKOFF_SKIP
            else:
                collector._chain_misses = misses

    def _save_tail(self, collector, value: int) -> bool:
        """One chain attempt; emits the record either way and returns
        whether a batch engaged (feeds the backoff accounting)."""
        msrlt = collector.msrlt
        try:
            block, off = msrlt.lookup_addr(value)
        except MSRLTError:
            raise MSRLTError(_DANGLING.format(value=value)) from None
        info = self.info
        if (
            off != 0
            or block.count != 1
            or block.logical[0] != BlockKind.HEAP
            or block.logical in collector._visited
            or collector.ti.info_for(block.elem_type) is not info
        ):
            collector._save_target(block, off)
            return False
        memory = collector.memory
        a0 = block.addr
        t0 = memory.load("ptr", a0 + self.tail_off)
        stride = t0 - a0
        if t0 == 0 or stride == 0 or abs(stride) < self.size:
            collector._save_target(block, 0)
            return False
        arena = msrlt.heap_arena()
        tkey = id(block.elem_type)
        # cheap scalar pre-walk: vectorize only when at least MIN_CHAIN
        # equally-spaced eligible nodes actually link up.  Tree-shaped
        # data (where a "chain" is 2-3 coincidentally adjacent
        # allocations) fails here in a few list bisects instead of a
        # NumPy round-trip per node.  ``a0``'s own tail IS ``t0``, so
        # the link load is skipped for the first hop.
        starts_l = arena.starts_l
        kinds_l = arena.kinds_l
        tkeys_l = arena.tkeys_l
        counts_l = arena.counts_l
        heap_kind = int(BlockKind.HEAP)
        visited = collector._visited
        tail_off = self.tail_off
        addr = a0
        nxt = t0
        linked = 1
        while True:
            i = bisect_right(starts_l, nxt) - 1
            if (
                i < 0
                or starts_l[i] != nxt
                or kinds_l[i] != heap_kind
                or tkeys_l[i] != tkey
                or counts_l[i] != 1
                or arena.blocks[i].logical in visited
            ):
                break
            linked += 1
            if linked >= MIN_CHAIN:
                break
            addr = nxt
            nxt = addr + stride
            if memory.load("ptr", addr + tail_off) != nxt:
                break
        if linked < MIN_CHAIN:
            collector._save_target(block, 0)
            return False
        seg = memory.heap_seg
        lo = seg.window_start
        hi = lo + len(seg.buf)
        astride = abs(stride)
        # candidates a0 + stride·k must leave the strided gather fully
        # inside the materialized heap window (registered blocks always
        # are; the |stride|-sized element windows need checking)
        if stride > 0:
            kmax = (hi - a0) // stride
        else:
            kmax = (a0 - lo) // astride + 1
            if a0 + astride > hi:
                kmax = 0  # topmost element's stride window would overrun
        m, hostarr, serials = self._walk(
            arena, seg, a0, stride, kmax, tkey, collector._visited
        )
        if m < MIN_CHAIN:
            collector._save_target(block, 0)
            return False
        # row emission translates the non-tail pointer columns, whose
        # targets may be stack or global blocks — that needs the FULL
        # arena (built at most once per generation, and only on passes
        # where a chain actually engaged)
        rows, m = self._build_rows(collector, msrlt.arena(), hostarr, serials, m)
        if m < MIN_CHAIN:
            collector._save_target(block, 0)
            return False
        for s in serials[:m].tolist():
            collector._visited.add((BlockKind.HEAP, s, 0))
        collector.buf.write(rows[:m].tobytes())
        stats = collector.stats
        stats.n_blocks += m
        stats.data_bytes += m * self.size
        stats.n_refs += m * self.n_ptr_cols
        # discovery of elements 1..m-1 plus one translate per REF col
        msrlt.n_searches += (m - 1) + m * self.n_ptr_cols
        # the last node's tail is the next record — reference traversal
        # continues there (may well start another batch)
        tail_name = self.host_fields[-1][0]
        collector.save_pointer(int(hostarr[tail_name][m - 1]))
        return True

    def _walk(self, arena, seg, a0, stride, kmax, tkey, visited):
        """Speculative stride walk: the longest prefix of candidates
        ``a0 + stride·k`` that are eligible chain nodes linked by their
        tail pointers.  Geometric growth keeps failed speculation O(1).
        Returns ``(m, host record array for m elements, serial array)``."""
        cap = 32
        astride = abs(stride)
        host_dt = self._host_dtype(astride)
        tail_name = self.host_fields[-1][0]
        while True:
            k = min(cap, kmax)
            if k <= 0:
                return 0, None, None
            addrs = a0 + stride * np.arange(k, dtype=np.int64)
            idx, offs = arena.lookup(addrs)
            safe = np.maximum(idx, 0)
            ok = (
                (idx >= 0)
                & (offs == 0)
                & (arena.kinds[safe] == BlockKind.HEAP)
                & (arena.tkeys[safe] == tkey)
                & (arena.counts[safe] == 1)
            )
            p = _true_prefix(ok)
            if p == 0:
                return 0, None, None
            # already-visited nodes end the batch (they must arrive as REFs)
            for j in range(1, p):
                if (BlockKind.HEAP, int(arena.la[idx[j]]), 0) in visited:
                    p = j
                    break
            # gather host records for the prefix in one strided view
            base_min = int(addrs[0] if stride > 0 else addrs[p - 1])
            off0 = base_min - seg.window_start
            hostarr = np.frombuffer(seg.buf, host_dt, count=p, offset=off0)
            if stride < 0:
                hostarr = hostarr[::-1]
            tails = hostarr[tail_name].astype(np.int64)
            linked = tails[: p - 1] == addrs[1:p]
            mbrk = np.flatnonzero(~linked)
            m = (int(mbrk[0]) + 1) if mbrk.size else p
            if m == k == cap and cap < kmax:
                cap *= 4
                continue
            return m, hostarr[:m], arena.la[idx[:m]]

    def _build_rows(self, collector, arena, hostarr, serials, m):
        """Vectorized row emission for *m* walked nodes; may shrink *m*
        when a non-tail pointer cell disqualifies an element (NULL, a
        not-yet-visited target, a padding ordinal — all cases the
        reference path must handle itself)."""
        info = self.info
        rows = np.zeros(m, self.row_dtype)
        rows["tag"] = _TAG_BLOCK
        rows["lk"] = BlockKind.HEAP
        rows["la"] = serials
        rows["tid"] = info.type_id
        rows["cnt"] = 1
        # ord/flag/lb stay zero
        visited = collector._visited
        for j, (kind, cell, name) in enumerate(self.cols):
            hname = f"h{j}"
            if kind == "scalar":
                rows[name][:m] = hostarr[hname][:m]
                continue
            pvals = hostarr[hname][:m].astype(np.int64)
            nz = pvals != 0
            if not bool(nz.all()):
                m = min(m, _true_prefix(nz))
                if m < MIN_CHAIN:
                    return rows, m
                pvals = pvals[:m]
            idx, offs = arena.lookup(pvals)
            ok = idx >= 0
            if not bool(ok.all()):
                m = min(m, _true_prefix(ok))
                if m < MIN_CHAIN:
                    return rows, m
                idx, offs = idx[:m], offs[:m]
            # targets must already be visited (they arrive as REFs); an
            # unvisited or batch-internal-forward target needs the
            # reference recursion, so it ends the batch
            uniq, inv = _unique_inverse(idx)
            seen = np.fromiter(
                (arena.blocks[int(i)].logical in visited for i in uniq),
                np.bool_, count=len(uniq),
            )
            okv = seen[inv]
            if not bool(okv.all()):
                m = min(m, _true_prefix(okv))
                if m < MIN_CHAIN:
                    return rows, m
                idx, offs = idx[:m], offs[:m]
                uniq, inv = _unique_inverse(idx)
            ords = np.empty(m, np.int64)
            bad = None
            for u_j in range(len(uniq)):
                blk = arena.blocks[int(uniq[u_j])]
                tinfo = collector.ti.info_for(blk.elem_type)
                sel = inv == u_j
                o = vec_byte_to_ordinal(tinfo, offs[sel], blk.count)
                if o is None:
                    first = int(np.flatnonzero(sel)[0])
                    bad = first if bad is None else min(bad, first)
                    continue
                ords[sel] = o
            if bad is not None:
                m = min(m, bad)
                if m < MIN_CHAIN:
                    return rows, m
                idx, ords = idx[:m], ords[:m]
            rows[f"{name}t"][:m] = _TAG_REF
            rows[f"{name}k"][:m] = arena.kinds[idx]
            rows[f"{name}a"][:m] = arena.la[idx]
            rows[f"{name}b"][:m] = arena.lb[idx]
            rows[f"{name}o"][:m] = ords
        return rows, m

    # -- restore --------------------------------------------------------------

    def try_restore(self, restorer, info):
        """Attempt a batched chain restore at a tail-pointer cell.

        Returns the destination address for the tail (the first batched
        node) or ``None`` to let the reference path consume the record.
        Never consumes bytes unless it commits a batch."""
        if restorer._chain_skip:
            restorer._chain_skip -= 1
            return None
        addr = self._try_restore(restorer, info)
        if addr is None:
            misses = restorer._chain_misses + 1
            if misses >= CHAIN_BACKOFF_MISSES:
                restorer._chain_misses = 0
                restorer._chain_skip = CHAIN_BACKOFF_SKIP
            else:
                restorer._chain_misses = misses
        else:
            restorer._chain_misses = 0
        return addr

    def _try_restore(self, restorer, info):
        buf = restorer.buf
        try:
            tag = buf.peek_u8()
        except EOFError:
            return None
        if tag != _TAG_BLOCK:
            return None
        # scalar pre-check: the batch only engages when the first
        # RESTORE_MIN_CHAIN records already look like chain rows, so a
        # lone BLOCK record (tree-shaped data arrives as one per tail)
        # declines in two struct unpacks instead of a vectorized parse
        window = buf.buffered()
        row_size = self.row_size
        if len(window) < RESTORE_MIN_CHAIN * row_size:
            return None
        tid = info.type_id
        for off in range(0, RESTORE_MIN_CHAIN * row_size, row_size):
            rtag, lk, _la, lb, rtid, cnt, order, flag = self._hdr.unpack_from(
                window, off
            )
            if (
                rtag != _TAG_BLOCK
                or lk != BlockKind.HEAP
                or lb != 0
                or rtid != tid
                or cnt != 1
                or order != 0
                or flag != 0
            ):
                return None
            for po in self._ptr_tag_offs:
                if window[off + po] != _TAG_REF:
                    return None
        memory = restorer.memory
        cap = 64
        while True:
            window = buf.buffered()
            k = min(cap, len(window) // self.row_size)
            if k < RESTORE_MIN_CHAIN:
                return None
            rows = np.frombuffer(window, self.row_dtype, count=k)
            valid = (
                (rows["tag"] == _TAG_BLOCK)
                & (rows["lk"] == BlockKind.HEAP)
                & (rows["lb"] == 0)
                & (rows["tid"] == info.type_id)
                & (rows["cnt"] == 1)
                & (rows["ord"] == 0)
                & (rows["flag"] == 0)
            )
            for kind, _cell, name in self.cols:
                if kind == "ptr":
                    valid &= rows[f"{name}t"] == _TAG_REF
            m = _true_prefix(valid)
            if m == k == cap and len(window) // self.row_size > k:
                cap *= 4
                continue
            break
        if m < RESTORE_MIN_CHAIN:
            return None
        # serials must be new to this payload (a duplicate BLOCK record
        # is corrupt; the reference path raises on it)
        serials = rows["la"][:m].astype(np.int64)
        mapping = restorer._mapping
        seen_local = set()
        for j, s in enumerate(serials.tolist()):
            if (BlockKind.HEAP, s, 0) in mapping or s in seen_local:
                m = j
                break
            seen_local.add(s)
        if m < RESTORE_MIN_CHAIN:
            return None
        # resolve every REF column target against already-restored blocks
        dest_cols = {}
        for kind, _cell, name in self.cols:
            if kind != "ptr":
                continue
            trip = np.stack(
                [
                    rows[f"{name}k"][:m].astype(np.int64),
                    rows[f"{name}a"][:m].astype(np.int64),
                    rows[f"{name}b"][:m].astype(np.int64),
                ],
                axis=1,
            )
            dests = np.zeros(len(trip), np.uint64)
            for u in _unique_rows(trip):
                key = (int(u[0]), int(u[1]), int(u[2]))
                sel = np.all(trip == u, axis=1)
                tblock = mapping.get(key)
                if tblock is None:
                    m = min(m, int(np.flatnonzero(sel)[0]))
                    continue
                tinfo = restorer.ti.info_for(tblock.elem_type)
                byte = vec_ordinal_to_byte(
                    tinfo, rows[f"{name}o"][: len(sel)][sel].astype(np.int64),
                    tblock.count,
                )
                dests[sel] = tblock.addr + byte
            if m < RESTORE_MIN_CHAIN:
                return None
            dest_cols[name] = dests
        serials = serials[:m]
        # one bulk carve + one bulk register — declined when the free
        # list would change which addresses the reference path assigns
        alloc = memory.heap_alloc_bulk(self.size, m)
        if alloc is None:
            return None
        base, stride = alloc
        blocks = restorer.msrlt.register_heap_bulk(
            base, stride, info.ctype, 1, serials.tolist()
        )
        for b in blocks:
            mapping[b.logical] = b
        addrs = base + stride * np.arange(m, dtype=np.int64)
        host_dt = self._host_dtype(stride)
        out = np.zeros(m, host_dt)
        for j, (kind, _cell, name) in enumerate(self.cols):
            hname = f"h{j}"
            if kind == "scalar":
                out[hname] = rows[name][:m]
            else:
                out[hname] = dest_cols[name][:m]
        tail_h = self.host_fields[-1][0]
        out[tail_h][: m - 1] = addrs[1:]
        memory.write_bytes(base, out.tobytes())
        buf.read(m * self.row_size)
        stats = restorer.stats
        stats.n_blocks += m
        stats.n_heap_allocs += m
        stats.n_refs += m * self.n_ptr_cols
        stats.data_bytes += m * self.size
        # the record after the batch is the last node's tail (may chain
        # into another batch, a REF, a NULL — the reference path decides)
        tail_val = restorer.restore_pointer()
        memory.store("ptr", int(addrs[-1]) + self.tail_off, tail_val)
        return int(base)


# -- compilation --------------------------------------------------------------


def compile_plan(info, layout):
    """Compile the graph plan for one (TypeInfo, architecture), or
    ``None`` when no plan shape applies (the per-cell/codec paths are
    already the right tool)."""
    arch = layout.arch
    if info.flat_kind is not None:
        return FlatPlan(info, layout)
    cells = info.cells
    if not cells:
        return None
    if (
        info.cell_count == 1
        and cells[0].kind == "ptr"
        and cells[0].offset == 0
        and info.unit_size == arch.ptr_size
    ):
        return PtrArrayPlan(info, layout)
    if info.repeat == 1 and info.cell_count >= 2 and cells[-1].kind == "ptr":
        return ChainPlan(info, layout)
    return None
