"""Pre-copy delta rounds: collect and restore only-dirty blocks.

One delta round carries the MSRLT-level diff of the source since the
previous round: heap blocks freed, blocks newly registered, and the
contents of blocks the write barriers marked dirty.  The round payload
(framed into ``MDLT`` chunks by the transport) is::

    u32 round_no
    u32 n_freed;  n_freed  x  logical                      (HEAP only)
    u32 n_new;    n_new    x  (logical, u32 type_id, u32 count)
    u32 n_blocks; n_blocks x  (logical, u8 state, [flags + contents])

``state`` 0 means the block's contents follow (exactly what the full
collector's ``_save_contents`` emits: the flags byte, then the flat /
codec / per-cell encoding); 1 means the block was *deferred* — one of
its pointers could not be expressed as a ``REF`` (dangling, or aimed at
the stack, which never ships in rounds) — and will arrive in the final
stop-and-copy stream instead.

Inside round contents every pointer is encoded as ``NULL`` or ``REF``:
the destination already holds every shippable target (earlier rounds or
this round's ``new`` section), so rounds never recurse.  The final
stop-and-copy stream is the ordinary full collection, except blocks
whose contents are already on the destination and clean ship as
:data:`~repro.msr.wire.TAG_CACHED` stubs: logical id + ordinal + one
record per pointer cell (so the depth-first traversal still reaches
dirty or new blocks hiding behind clean ones) and no scalar contents.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.arch.buffers import ReadBuffer, WriteBuffer
from repro.msr.collect import Collector
from repro.msr.msrlt import BlockKind, MemoryBlock, MSRLTError
from repro.msr.restore import RestoreError, Restorer
from repro.msr.wire import (
    TAG_CACHED,
    TAG_NULL,
    TAG_REF,
    read_logical,
    write_logical,
)

__all__ = [
    "DeltaDefer",
    "DeltaCollector",
    "DeltaRestorer",
    "PrecopyFinalCollector",
    "PrecopyFinalRestorer",
    "RoundResult",
    "build_round",
    "apply_round",
]


class DeltaDefer(Exception):
    """A dirty block cannot ship in this round (pointer without a
    shippable REF target); it is deferred to the stop-and-copy stream."""


class DeltaCollector(Collector):
    """Contents-only collector for delta rounds: REF/NULL pointers, no
    traversal, no BLOCK records.

    *known*, when given, is the set of logical ids the destination holds
    (earlier rounds plus this round's ``new`` section).  A pointer whose
    target falls outside it — a block that was unreachable at snapshot
    time and surfaced since, without itself being written — cannot be
    expressed as a ``REF``, so the block defers to the final stream.
    """

    pointer_plans = False

    def __init__(self, process, buf: WriteBuffer, known=None) -> None:
        super().__init__(process, buf)
        self.known = known

    def save_pointer(self, value: int) -> None:
        if value == 0:
            self.buf.write_u8(TAG_NULL)
            self.buf.count_tag("NULL")
            self.stats.n_nulls += 1
            return
        try:
            block, off = self.msrlt.lookup_addr(value)
        except MSRLTError:
            raise DeltaDefer(f"pointer {value:#x} has no shippable target") from None
        if block.logical[0] == BlockKind.STACK:
            # stack blocks never ship in rounds (they travel only in the
            # final stream, after the source has genuinely stopped)
            raise DeltaDefer(f"pointer {value:#x} aims at the stack")
        if self.known is not None and block.logical not in self.known:
            raise DeltaDefer(
                f"pointer {value:#x} aims at {block.logical}, which the "
                f"destination does not hold yet"
            )
        info = self.ti.info_for(block.elem_type)
        self.buf.write_u8(TAG_REF)
        self.buf.count_tag("REF")
        write_logical(self.buf, block.logical)
        self.buf.write_u32(info.byte_to_ordinal(off, block.count))
        self.stats.n_refs += 1

    def _save_target(self, block: MemoryBlock, byte_off: int) -> None:  # pragma: no cover
        raise AssertionError("delta rounds never emit BLOCK records")


class DeltaRestorer(Restorer):
    """Contents-only restorer for delta rounds.

    The destination MSRLT itself is the cross-round ledger: every REF
    resolves through ``lookup_logical`` (blocks registered by earlier
    rounds or by this round's ``new`` section), not the per-pass mapping.
    """

    pointer_plans = False

    def _prefault_registered(self) -> None:
        # rounds touch few blocks; the full-table prefault (and its
        # arena rebuild) would cost more than it saves
        return

    def restore_pointer(self, expected: MemoryBlock | None = None) -> int:
        tag = self.buf.read_u8()
        if tag == TAG_NULL:
            self.stats.n_nulls += 1
            return 0
        if tag != TAG_REF:
            raise RestoreError(f"bad delta record tag {tag} (rounds carry NULL/REF only)")
        logical = read_logical(self.buf)
        ordinal = self.buf.read_u32()
        try:
            block = self.msrlt.lookup_logical(logical)
        except MSRLTError:
            raise RestoreError(f"delta REF to unknown block {logical}") from None
        self.stats.n_refs += 1
        info = self.ti.info_for(block.elem_type)
        return block.addr + info.ordinal_to_byte(ordinal, block.count)


class PrecopyFinalCollector(Collector):
    """The stop-and-copy collector: a full collection pass that elides
    the contents of blocks the delta rounds already delivered.

    *cached* is the set of logical ids whose destination copy is known
    byte-fresh (shipped in some round and not dirtied since).  A cached
    block's first visit emits a :data:`TAG_CACHED` stub — logical id,
    ordinal, then one record per pointer cell so the traversal continues
    behind it — instead of a ``BLOCK`` record with contents.
    """

    pointer_plans = False

    def __init__(self, process, buf: WriteBuffer, cached: Iterable[tuple] = ()) -> None:
        super().__init__(process, buf)
        self.cached = frozenset(cached)

    def _save_target(self, block: MemoryBlock, byte_off: int) -> None:
        if block.logical in self.cached and block.logical not in self._visited:
            info = self.ti.info_for(block.elem_type)
            self._visited.add(block.logical)
            self.buf.write_u8(TAG_CACHED)
            self.buf.count_tag("CACHED")
            write_logical(self.buf, block.logical)
            self.buf.write_u32(info.byte_to_ordinal(byte_off, block.count))
            self.stats.n_cached_blocks += 1
            memory = self.memory
            addr = block.addr
            stride = info.unit_size
            cells = info.cells
            for unit in range(info.units_in(block.count)):
                base = addr + unit * stride
                for cell in cells:
                    if cell.kind == "ptr":
                        self.save_pointer(memory.load("ptr", base + cell.offset))
            return
        super()._save_target(block, byte_off)


class PrecopyFinalRestorer(Restorer):
    """The stop-and-copy restorer, applied to the pre-warmed scratch.

    Two deviations from the plain restorer: ``TAG_CACHED`` stubs resolve
    against the blocks the delta rounds already built (contents stay,
    pointer cells are re-stored from the stub's records), and ``BLOCK``
    records for heap blocks the scratch already holds restore *in place*
    instead of allocating a duplicate.
    """

    pointer_plans = False

    def restore_pointer(self, expected: MemoryBlock | None = None) -> int:
        if self.buf.peek_u8() != TAG_CACHED:
            return super().restore_pointer(expected)
        self.buf.read_u8()
        logical = read_logical(self.buf)
        ordinal = self.buf.read_u32()
        try:
            block = self.msrlt.lookup_logical(logical)
        except MSRLTError:
            raise RestoreError(f"cached stub for unknown block {logical}") from None
        if expected is not None and block.logical != expected.logical:
            raise RestoreError(
                f"cached stub for {logical} arrived where "
                f"{expected.logical} was expected"
            )
        self._mapping[tuple(logical)] = block
        self.stats.n_cached_blocks += 1
        # mirror the collector's walk: one record per pointer cell.  The
        # stored values equal what the rounds left there (pointers are
        # logical-stable), so the re-store is idempotent by construction.
        info = self.ti.info_for(block.elem_type)
        memory = self.memory
        stride = info.unit_size
        cells = info.cells
        for unit in range(info.units_in(block.count)):
            base = block.addr + unit * stride
            for cell in cells:
                if cell.kind == "ptr":
                    memory.store("ptr", base + cell.offset, self.restore_pointer())
        return block.addr + info.ordinal_to_byte(ordinal, block.count)

    def _resolve_block(self, logical: tuple, info, count: int) -> MemoryBlock:
        if logical[0] == BlockKind.HEAP and self.msrlt.has_logical(logical):
            block = self.msrlt.lookup_logical(logical)
            if info.size * count != block.size:
                raise RestoreError(
                    f"record for {logical} claims {info.size * count} bytes "
                    f"but the pre-copied block is {block.size} bytes"
                )
            return block
        return super()._resolve_block(logical, info, count)


class RoundResult:
    """What one :func:`build_round` produced."""

    __slots__ = ("payload", "shipped", "deferred", "stats")

    def __init__(self, payload, shipped, deferred, stats) -> None:
        self.payload = payload
        self.shipped = shipped  # logicals whose contents are in the payload
        self.deferred = deferred  # logicals punted to the final stream
        self.stats = stats


def build_round(
    process,
    round_no: int,
    freed: Sequence[tuple],
    new_blocks: Sequence[MemoryBlock],
    dirty_blocks: Sequence[MemoryBlock],
    known=None,
) -> RoundResult:
    """Serialize one delta round on the source.

    *freed* are HEAP logicals the destination holds that the source has
    since freed; *new_blocks* are blocks registered since the previous
    round (their registration must precede any contents that REF them);
    *dirty_blocks* are the blocks to (re)ship contents for — new blocks
    are expected to appear here too.  *known* (optional) bounds the REF
    targets to what the destination holds; see :class:`DeltaCollector`.
    """
    out = WriteBuffer()
    out.write_u32(round_no)
    out.write_u32(len(freed))
    for logical in freed:
        if logical[0] != BlockKind.HEAP:
            raise MSRLTError(f"only heap blocks can be freed mid-migration: {logical}")
        write_logical(out, logical)
    ti = process.ti
    out.write_u32(len(new_blocks))
    for block in new_blocks:
        write_logical(out, block.logical)
        info = ti.info_for(block.elem_type)
        out.write_u32(info.type_id)
        out.write_u32(block.count)
    out.write_u32(len(dirty_blocks))
    shipped: list[tuple] = []
    deferred: list[tuple] = []
    coll = DeltaCollector(process, WriteBuffer(), known=known)
    for block in dirty_blocks:
        write_logical(out, block.logical)
        # each block gets its own buffer so a mid-contents DeltaDefer
        # leaves no partial bytes in the round payload
        coll.buf = WriteBuffer()
        info = ti.info_for(block.elem_type)
        try:
            coll._save_contents(block, info)
        except DeltaDefer:
            out.write_u8(1)
            deferred.append(block.logical)
        else:
            out.write_u8(0)
            out.write(coll.buf.getvalue())
            shipped.append(block.logical)
            coll.stats.n_blocks += 1
            coll.stats.data_bytes += block.size
    stats = coll.finish()
    stats.wire_bytes = out.nbytes
    return RoundResult(out.getvalue(), shipped, deferred, stats)


def apply_round(process, payload, expected_round: int):
    """Apply one delta round to the destination scratch process.

    Returns the :class:`~repro.msr.restore.RestoreStats` of the round.
    Raises :class:`~repro.msr.restore.RestoreError` on any structural
    disagreement (wrong round number, REF to an unknown block, freed
    logical the scratch does not hold) — the engine maps that to its
    retryable error family exactly like a full-stream restore failure.
    """
    buf = ReadBuffer(payload)
    rest = DeltaRestorer(process, buf)
    msrlt = process.msrlt
    ti = process.ti
    round_no = buf.read_u32()
    if round_no != expected_round:
        raise RestoreError(
            f"delta round {round_no} arrived where round {expected_round} "
            f"was expected"
        )
    n_freed = buf.read_u32()
    for _ in range(n_freed):
        logical = read_logical(buf)
        if logical[0] != BlockKind.HEAP:
            raise RestoreError(f"freed record for non-heap block {logical}")
        try:
            block = msrlt.lookup_logical(logical)
        except MSRLTError:
            raise RestoreError(f"freed record for unknown block {logical}") from None
        msrlt.unregister(block.addr)
        process.memory.heap_free(block.addr)
    n_new = buf.read_u32()
    for _ in range(n_new):
        logical = read_logical(buf)
        type_id = buf.read_u32()
        count = buf.read_u32()
        info = ti.info(type_id)
        if logical[0] == BlockKind.HEAP:
            if msrlt.has_logical(logical):
                raise RestoreError(f"duplicate registration of {logical} in round")
            process.restore_heap_block(info.ctype, count, serial=logical[1])
            rest.stats.n_heap_allocs += 1
        elif logical[0] == BlockKind.GLOBAL:
            # globals pre-exist on the destination; just validate
            block = msrlt.lookup_logical(logical)
            if info.size * count != block.size:
                raise RestoreError(
                    f"round registration for {logical} claims "
                    f"{info.size * count} bytes, destination block is "
                    f"{block.size} bytes"
                )
        else:
            raise RestoreError(f"stack block {logical} in a delta round")
    n_blocks = buf.read_u32()
    for _ in range(n_blocks):
        logical = read_logical(buf)
        state = buf.read_u8()
        if state == 1:
            continue  # deferred: arrives in the stop-and-copy stream
        if state != 0:
            raise RestoreError(f"bad delta block state {state} for {logical}")
        try:
            block = msrlt.lookup_logical(logical)
        except MSRLTError:
            raise RestoreError(f"delta contents for unknown block {logical}") from None
        info = ti.info_for(block.elem_type)
        rest._restore_contents(block, info)
        rest.stats.n_blocks += 1
        rest.stats.data_bytes += block.size
    if not buf.at_end():
        raise RestoreError(f"{buf.remaining} trailing bytes in delta round")
    return rest.stats
