"""Explicit MSR graph construction: G = (V, E).

Paper §3: "we model a snapshot of a program memory space as a graph
G = (V, E) … Each vertex in the graph represents a memory block, whereas
each edge represents a relationship between two memory blocks when one of
them contains a pointer."

The migration fast path never materializes this graph (it streams the DFS
directly); this module builds it explicitly for inspection, testing, and
the paper's Figure 1 example.  :func:`MSRGraph.to_networkx` exports a
``networkx.DiGraph`` for further analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.msr.msrlt import BlockKind, MemoryBlock

__all__ = ["MSREdge", "MSRGraph", "build_msr_graph"]


@dataclass(frozen=True)
class MSREdge:
    """One pointer edge: the cell at (*src*, *src_cell*) refers to byte
    offset *dst_off* inside block *dst*."""

    src: tuple  # logical id
    src_cell: int  # flat cell ordinal of the pointer within src
    dst: tuple  # logical id
    dst_off: int  # byte offset within dst


@dataclass
class MSRGraph:
    """A snapshot of the process's reachable memory graph."""

    vertices: dict[tuple, MemoryBlock] = field(default_factory=dict)
    edges: list[MSREdge] = field(default_factory=list)
    #: pointers that were NULL (counted, not edges)
    n_null_pointers: int = 0
    #: logical ids of the roots the traversal started from
    roots: list[tuple] = field(default_factory=list)

    def vertex_names(self) -> list[str]:
        """Human-readable vertex labels in insertion (DFS) order."""
        return [b.name or str(b.logical) for b in self.vertices.values()]

    def out_edges(self, logical: tuple) -> list[MSREdge]:
        return [e for e in self.edges if e.src == tuple(logical)]

    def segment_census(self) -> dict[str, int]:
        """Vertex count per segment kind (global/stack/heap)."""
        census = {"global": 0, "stack": 0, "heap": 0}
        for block in self.vertices.values():
            census[BlockKind.NAMES[block.logical[0]]] += 1
        return census

    def total_bytes(self) -> int:
        return sum(b.size for b in self.vertices.values())

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (vertices keyed by logical id)."""
        import networkx as nx

        g = nx.DiGraph()
        for logical, block in self.vertices.items():
            g.add_node(
                logical,
                name=block.name,
                segment=BlockKind.NAMES[logical[0]],
                size=block.size,
                ctype=str(block.elem_type),
                count=block.count,
            )
        for e in self.edges:
            g.add_edge(e.src, e.dst, cell=e.src_cell, dst_off=e.dst_off)
        return g


def build_msr_graph(process, roots: list[MemoryBlock]) -> MSRGraph:
    """Depth-first construction of the MSR graph from *roots*.

    *process* must expose ``memory``, ``msrlt``, and ``ti`` (the same
    interface the collector uses).  The traversal order matches the
    collector's exactly, so tests can assert the §3.2 example's DFS
    sequence against ``graph.vertices`` insertion order.
    """
    graph = MSRGraph(roots=[tuple(b.logical) for b in roots])
    memory = process.memory
    msrlt = process.msrlt
    ti = process.ti

    def visit(block: MemoryBlock) -> None:
        logical = tuple(block.logical)
        if logical in graph.vertices:
            return
        graph.vertices[logical] = block
        info = ti.info_for(block.elem_type)
        if not info.has_pointers:
            return
        for unit in range(info.units_in(block.count)):
            base = block.addr + unit * info.unit_size
            for ci, cell in enumerate(info.cells):
                if cell.kind != "ptr":
                    continue
                value = memory.load("ptr", base + cell.offset)
                if value == 0:
                    graph.n_null_pointers += 1
                    continue
                target, off = msrlt.lookup_addr(value)
                graph.edges.append(
                    MSREdge(
                        src=logical,
                        src_cell=unit * info.cell_count + ci,
                        dst=tuple(target.logical),
                        dst_off=off,
                    )
                )
                visit(target)

    for root in roots:
        visit(root)
    return graph
