"""Data restoration: ``Restore_pointer`` and ``Restore_variable``.

Paper §3.1: "At the destination machine, the function Restore_pointer is
called recursively to rebuild memory blocks in memory space from the
output of Save_pointer. … The functions consult the MSRLT data structures
for appropriate memory locations and restore the memory block contents
there."

The restorer reads records sequentially (which *is* the source's DFS
order), maintains the source-logical-id → destination-block mapping, and
returns destination machine addresses for every pointer — the address
translation the MSRLT exists for.  Global and stack blocks map onto the
blocks the destination process already registered (same program, same
logical ids); heap blocks are allocated on demand — this asymmetry is why
restoration is O(n) in the number of blocks where collection's search is
O(n log n) (§4.2, visible in Figure 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.arch import xdr
from repro.arch.buffers import ReadBuffer
from repro.msr.graphplan import NO_PLAN
from repro.msr.msrlt import BlockKind, MemoryBlock
from repro.msr.ti import TypeInfo
from repro.msr.wire import FLAG_FLAT, TAG_BLOCK, TAG_NULL, TAG_REF, read_logical
from repro.obs.attribution import block_class_of

__all__ = ["RestoreStats", "Restorer", "Restore_pointer", "Restore_variable"]


class RestoreError(Exception):
    """Malformed or inconsistent migration payload."""


@dataclass(slots=True)
class RestoreStats:
    """Accounting for one restoration run."""

    n_blocks: int = 0
    n_refs: int = 0
    n_nulls: int = 0
    n_heap_allocs: int = 0
    #: pre-copy cached stubs consumed (TAG_CACHED records)
    n_cached_blocks: int = 0
    data_bytes: int = 0  # destination-arch bytes written


class Restorer:
    """One data-restoration pass into a destination process."""

    #: mirror of Collector.pointer_plans — the pre-copy restorers read
    #: per-record tags the bulk ptr_array/chain restore paths cannot see,
    #: so their subclasses disable those two plan kinds symmetrically.
    pointer_plans = True

    def __init__(self, process, buf: ReadBuffer) -> None:
        self.process = process
        self.memory = process.memory
        self.msrlt = process.msrlt
        self.ti = process.ti
        self.buf = buf
        #: source logical id -> destination block (the MSRLT update)
        self._mapping: dict[tuple, MemoryBlock] = {}
        self.stats = RestoreStats()
        # attribution is resolved ONCE per pass; when off (None) every
        # per-block hook below is a single `is not None` test
        self._prof = obs.current_attribution()
        # whole-graph plans are bypassed under attribution so PR 5's
        # exact per-type byte partition keeps its meaning (DESIGN §12)
        self.plan_enabled = self._prof is None and getattr(
            process.ti, "graphplan_enabled", True
        )
        # chain-plan engagement backoff state (graphplan.ChainPlan)
        self._chain_misses = 0
        self._chain_skip = 0
        self._prefault_registered()

    def _prefault_registered(self) -> None:
        """Materialize the windows spanning the destination's registered
        blocks (globals + the resumed stack) before the pass.

        Every contents write below then splices into an existing window;
        without this, a multi-MB restore is dominated by bytearray
        realloc+copy inside the window *growth* paths (the allocator
        rarely gets an in-place resize for windows that size).  Heap
        blocks are allocated on demand during the pass and excluded —
        their windows grow with the usual slack amortization.
        """
        spans: dict[str, tuple] = {}
        for block in self.msrlt.arena().blocks:
            seg = self.memory.segment_of(block.addr)
            lo, hi = spans.get(seg.name, (block.addr, block.end))
            spans[seg.name] = (min(lo, block.addr), max(hi, block.end))
        for lo, hi in spans.values():
            self.memory.segment_of(lo).ensure(lo, hi - lo)

    # -- public entry points (paper interface names) ------------------------------------

    def restore_variable(self, block: MemoryBlock) -> None:
        """``Restore_variable(&var)`` — fill the variable's own block."""
        addr = self.restore_pointer(expected=block)
        del addr

    def restore_pointer(self, expected: MemoryBlock | None = None) -> int:
        """``Restore_pointer()`` — read one record, rebuild its target if
        needed, and return the *destination* address it denotes."""
        tag = self.buf.read_u8()
        if tag == TAG_NULL:
            self.stats.n_nulls += 1
            return 0

        if tag == TAG_REF:
            logical = read_logical(self.buf)
            ordinal = self.buf.read_u32()
            block = self._mapping.get(logical)
            if block is None:
                raise RestoreError(f"REF to unseen block {logical}")
            self.stats.n_refs += 1
            info = self.ti.info_for(block.elem_type)
            return block.addr + info.ordinal_to_byte(ordinal, block.count)

        if tag != TAG_BLOCK:
            raise RestoreError(f"bad record tag {tag}")

        logical = read_logical(self.buf)
        type_id = self.buf.read_u32()
        count = self.buf.read_u32()
        ordinal = self.buf.read_u32()
        info = self.ti.info(type_id)

        block = self._resolve_block(logical, info, count)
        if expected is not None and block.logical != expected.logical:
            raise RestoreError(
                f"record for {logical} arrived where {expected.logical} was expected"
            )
        # register the mapping BEFORE contents: cycles arrive as REFs
        self._mapping[logical] = block
        self.stats.n_blocks += 1
        self.stats.data_bytes += block.size
        prof = self._prof
        if prof is None:
            self._restore_contents(block, info)
        else:
            prof.enter_block(
                "restore", info.label, block_class_of(logical),
                self.buf.position,
            )
            engagement = "percell"
            try:
                engagement = self._restore_contents(block, info)
            finally:
                prof.exit_block(
                    self.buf.position, engagement,
                    cells=info.cells_in(block.count),
                )
        return block.addr + info.ordinal_to_byte(ordinal, block.count)

    # -- block resolution ------------------------------------------------------------------

    def _resolve_block(self, logical: tuple, info: TypeInfo, count: int) -> MemoryBlock:
        kind = logical[0]
        if kind in (BlockKind.GLOBAL, BlockKind.STACK):
            # structural identity: the destination process registered the
            # same block under the same machine-independent id
            block = self.msrlt.lookup_logical(logical)
            # reject size disagreements (corrupt or mismatched payloads
            # must never overwrite memory adjacent to the block)
            if info.size * count != block.size:
                raise RestoreError(
                    f"record for {logical} claims {info.size * count} bytes "
                    f"but the destination block is {block.size} bytes"
                )
            return block
        if kind == BlockKind.HEAP:
            self.stats.n_heap_allocs += 1
            return self.process.restore_heap_block(info.ctype, count, serial=logical[1])
        raise RestoreError(f"unknown block kind {kind}")

    # -- contents -----------------------------------------------------------------------------

    def _restore_contents(self, block: MemoryBlock, info: TypeInfo) -> str:
        """Rebuild one block's contents; returns which path engaged
        (``"flat"`` / ``"codec"`` / ``"percell"``, for attribution)."""
        flags = self.buf.read_u8()
        n_cells = info.cells_in(block.count)
        if self.plan_enabled:
            # inlined ti.plan_for fast path — this runs once per record
            plan = info.plan
            if plan is None:
                plan = self.ti.plan_for(info)
            elif plan is NO_PLAN:
                plan = None
        else:
            plan = None

        if flags & FLAG_FLAT:
            # the wire is a dense run of one primitive kind; find that kind
            # from the type (flatness is structural, but be defensive about
            # exotic architectures where the destination layout is padded)
            kind = info.cells[0].kind
            if (
                info.flat_kind is not None
                and plan is not None
                and plan.restore(self, block, info)
            ):
                # zero-copy: wire view decoded straight into the segment
                return "plan"
            raw = self.buf.read(n_cells * xdr.wire_sizeof(kind))
            if info.flat_kind is not None:
                self.ti.restore_flat(self.memory, block.addr, kind, n_cells, raw)
            else:  # pragma: no cover - no supported arch pair hits this
                values = xdr.decode_array(kind, raw, n_cells)
                for i in range(info.units_in(block.count)):
                    base = block.addr + i * info.unit_size
                    for j, cell in enumerate(info.cells):
                        self.memory.store(
                            cell.kind, base + cell.offset, values[i * info.cell_count + j].item()
                        )
            return "flat"

        codec = self.ti.codec_for(info)
        if codec is not None:
            # compiled mirror plan for this (type, destination arch)
            codec.restore(self, block, info)
            return "codec"

        if (
            plan is not None
            and self.pointer_plans
            and plan.KIND == "ptr_array"
            and plan.restore(self, block, info)
        ):
            return "plan"
        chain = (
            plan
            if plan is not None and self.pointer_plans and plan.KIND == "chain"
            else None
        )
        memory = self.memory
        buf = self.buf
        cells = info.cells
        tail = cells[-1] if chain is not None else None
        for unit in range(info.units_in(block.count)):
            base = block.addr + unit * info.unit_size
            for cell in cells:
                if cell.kind == "ptr":
                    if cell is tail:
                        # tail pointer of a chain-shaped struct: a batched
                        # restore consumes the whole row run; otherwise
                        # fall through to the reference record read.  The
                        # backoff skip branch is inlined (one int test)
                        if self._chain_skip:
                            self._chain_skip -= 1
                            value = None
                        else:
                            value = chain.try_restore(self, info)
                        if value is None:
                            value = self.restore_pointer()
                        memory.store("ptr", base + cell.offset, value)
                    else:
                        memory.store("ptr", base + cell.offset, self.restore_pointer())
                else:
                    width = xdr.wire_sizeof(cell.kind)
                    value = xdr.decode(cell.kind, buf.read(width))
                    memory.store(cell.kind, base + cell.offset, value)
        return "percell"


# -- paper-style free-function interface ---------------------------------------------


def Restore_variable(restorer: Restorer, block: MemoryBlock) -> None:
    """Paper-style alias for :meth:`Restorer.restore_variable`."""
    restorer.restore_variable(block)


def Restore_pointer(restorer: Restorer) -> int:
    """Paper-style alias for :meth:`Restorer.restore_pointer`."""
    return restorer.restore_pointer()
