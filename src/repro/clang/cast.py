"""AST node definitions for the migration-safe C subset.

Nodes are plain dataclasses.  Every node carries a source ``line`` for
diagnostics and for the annotator's poll-point labels.  Expression nodes
gain a ``ctype`` attribute during type checking (in the compiler).

Statement nodes carry a ``stmt_id`` assigned during normalization; the
liveness analysis and the poll-point tables are keyed on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.clang.ctypes import CType

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "IntLit",
    "FloatLit",
    "CharLit",
    "StringLit",
    "Ident",
    "Unary",
    "Binary",
    "Assign",
    "Call",
    "Index",
    "Member",
    "Cast",
    "SizeofType",
    "SizeofExpr",
    "Cond",
    "ExprStmt",
    "Decl",
    "DeclStmt",
    "If",
    "While",
    "DoWhile",
    "For",
    "Return",
    "Break",
    "Continue",
    "Block",
    "Switch",
    "SwitchCase",
    "Null",
    "PollHint",
    "Param",
    "FuncDef",
    "GlobalVar",
    "TranslationUnit",
]


@dataclass
class Node:
    """Base of all AST nodes."""

    line: int = field(default=0, kw_only=True)


@dataclass
class Expr(Node):
    """Base of expressions.  ``ctype`` is filled in by the type checker."""

    ctype: Optional[CType] = field(default=None, kw_only=True, repr=False, compare=False)


# -- literals and primaries -------------------------------------------------


@dataclass
class IntLit(Expr):
    """Integer literal (decimal or hex, with u/l suffixes)."""
    value: int = 0
    unsigned: bool = False
    long: bool = False


@dataclass
class FloatLit(Expr):
    """Floating literal (``1.5``, ``2e3``; ``single`` marks an ``f`` suffix)."""
    value: float = 0.0
    single: bool = False  # 1.0f


@dataclass
class CharLit(Expr):
    """Character literal; ``value`` is the character code (an int, as in C)."""
    value: int = 0  # the character code


@dataclass
class StringLit(Expr):
    """String literal; storage is interned into the global segment."""
    value: str = ""


@dataclass
class Ident(Expr):
    """A name use (variable reference; functions appear only in Call)."""
    name: str = ""


@dataclass
class Null(Expr):
    """The NULL constant (``(void*)0`` / the ``NULL`` keyword)."""


# -- operators ---------------------------------------------------------------


@dataclass
class Unary(Expr):
    """Unary operator: ``- ! ~ * & ++pre --pre post++ post--``.

    ``op`` is one of ``"-" "!" "~" "*" "&" "++" "--" "p++" "p--"``
    (the ``p`` prefix marks the postfix forms).
    """

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    """Binary operator (arithmetic, comparison, logical, bitwise)."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    """Assignment ``target op= value`` (``op`` is ``""`` for plain ``=``)."""

    op: str = ""
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """Direct call ``func(args...)`` (function pointers are unsupported)."""
    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Member(Expr):
    """Member access ``base.name`` (``arrow=False``) or ``base->name``."""

    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    """Explicit cast ``(type) operand`` (also used for implicit conversions)."""
    to: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class SizeofType(Expr):
    """``sizeof(type)`` — resolved per architecture at specialization."""
    of: CType = None  # type: ignore[assignment]


@dataclass
class SizeofExpr(Expr):
    """``sizeof expr`` — the operand is typed but never evaluated."""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Cond(Expr):
    """Ternary ``cond ? then : other``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


# -- statements ---------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base of statements.  ``stmt_id`` is assigned during normalization."""

    stmt_id: int = field(default=-1, kw_only=True, compare=False)


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects."""
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Decl(Node):
    """One declarator: ``name`` of ``ctype`` with optional initializer."""

    name: str = ""
    ctype: CType = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    #: brace initializer for arrays, e.g. ``int a[3] = {1,2,3};``
    init_list: Optional[list[Expr]] = None


@dataclass
class DeclStmt(Stmt):
    """One or more local declarations (``int a = 1, *b;``)."""
    decls: list[Decl] = field(default_factory=list)


@dataclass
class If(Stmt):
    """``if (cond) then [else other]``."""
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """``while (cond) body``."""
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]
    #: statements hoisted out of a side-effecting condition (normalizer);
    #: re-executed before every evaluation of ``cond``
    cond_pre: list["Stmt"] = field(default_factory=list, compare=False)


@dataclass
class DoWhile(Stmt):
    """``do body while (cond);``."""
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]
    cond_pre: list["Stmt"] = field(default_factory=list, compare=False)


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``."""
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]
    #: normalizer-filled statement forms of init/cond-prefix/step
    init_stmts: list["Stmt"] = field(default_factory=list, compare=False)
    cond_pre: list["Stmt"] = field(default_factory=list, compare=False)
    step_stmts: list["Stmt"] = field(default_factory=list, compare=False)


@dataclass
class Return(Stmt):
    """``return [value];``."""
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """``break;`` (innermost loop or switch)."""
    pass


@dataclass
class Continue(Stmt):
    """``continue;`` (innermost loop; reaches a for loop's step)."""
    pass


@dataclass
class Block(Stmt):
    """A brace-enclosed statement list with its own scope."""
    body: list[Stmt] = field(default_factory=list)


@dataclass
class SwitchCase(Node):
    """One ``case value:`` arm (``value is None`` for ``default:``)."""

    value: Optional[int] = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    """``switch (cond) { case ...: ... }`` with C fallthrough."""
    cond: Expr = None  # type: ignore[assignment]
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class PollHint(Stmt):
    """Explicit poll-point written by the user as ``migrate_here();``.

    The pre-compiler always honours these regardless of the poll-point
    selection strategy (the paper: "users can also select their preferred
    poll-points").
    """


# -- top level ----------------------------------------------------------------


@dataclass
class Param(Node):
    """One function parameter (arrays already decayed to pointers)."""
    name: str = ""
    ctype: CType = None  # type: ignore[assignment]


@dataclass
class FuncDef(Node):
    """A function definition with its body."""
    name: str = ""
    ret: CType = None  # type: ignore[assignment]
    params: list[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass
class GlobalVar(Node):
    """A file-scope variable with optional constant initializer."""
    name: str = ""
    ctype: CType = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    init_list: Optional[list[Expr]] = None


@dataclass
class TranslationUnit(Node):
    """A parsed program: struct tags, globals, and function definitions."""

    structs: dict[str, "CType"] = field(default_factory=dict)
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        """Look up a function definition by name."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r}")
