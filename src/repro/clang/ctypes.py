"""C type system with per-architecture layout.

Types are *architecture-neutral* descriptions; all layout questions
(``sizeof``, alignment, struct field offsets, padding) are answered by a
:class:`TypeLayout` bound to one :class:`~repro.arch.machine.MachineArch`.

The layout also provides the *flattened cell* view that the paper's
machine-independent pointer format relies on: every type is a sequence of
primitive leaf cells (scalars and pointers), and a pointer into a memory
block is encoded on the wire as *(block id, cell ordinal)*.  Cell ordinals
are architecture-independent (the *sequence* of leaves never changes, only
their byte offsets), which is exactly what makes the encoding portable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.arch.machine import MachineArch, PRIMITIVE_KINDS

__all__ = [
    "CType",
    "VoidType",
    "PrimType",
    "PointerType",
    "ArrayType",
    "StructType",
    "FuncType",
    "Cell",
    "TypeLayout",
    "LayoutError",
    "VOID",
    "CHAR",
    "UCHAR",
    "SHORT",
    "USHORT",
    "INT",
    "UINT",
    "LONG",
    "ULONG",
    "LLONG",
    "ULLONG",
    "FLOAT",
    "DOUBLE",
    "type_key",
]


class LayoutError(Exception):
    """A type cannot be laid out (e.g. incomplete struct used by value)."""


class CType:
    """Base class of all C types."""

    #: True for types a value can be loaded into a VM register from.
    is_scalar = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self}>"


class VoidType(CType):
    """The ``void`` type (only behind pointers or as a return type)."""

    _instance: Optional["VoidType"] = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PrimType(CType):
    """A primitive arithmetic type, identified by its *kind* string."""

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in PRIMITIVE_KINDS or self.kind == "ptr":
            raise ValueError(f"bad primitive kind {self.kind!r}")

    is_scalar = True

    @property
    def is_float(self) -> bool:
        return self.kind in ("float", "double")

    @property
    def is_integer(self) -> bool:
        return not self.is_float

    def __str__(self) -> str:
        names = {
            "char": "char",
            "uchar": "unsigned char",
            "short": "short",
            "ushort": "unsigned short",
            "int": "int",
            "uint": "unsigned int",
            "long": "long",
            "ulong": "unsigned long",
            "llong": "long long",
            "ullong": "unsigned long long",
            "float": "float",
            "double": "double",
        }
        return names[self.kind]


@dataclass(frozen=True)
class PointerType(CType):
    """Pointer to *target* (which may be :class:`VoidType` or incomplete)."""

    target: CType

    is_scalar = True

    def __str__(self) -> str:
        return f"{self.target} *"


@dataclass(frozen=True)
class ArrayType(CType):
    """Fixed-length array of *elem*."""

    elem: CType
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("array length must be positive")

    def __str__(self) -> str:
        return f"{self.elem} [{self.length}]"


class StructType(CType):
    """A struct.  Self-referential structs are supported: create the type
    with ``fields=None`` (incomplete), then call :meth:`define`.

    Identity semantics: two struct types are the same type only if they are
    the same object (C's tag scoping, flattened to one global namespace).
    """

    def __init__(self, tag: str, fields: Optional[Sequence[tuple[str, CType]]] = None) -> None:
        self.tag = tag
        self._fields: Optional[tuple[tuple[str, CType], ...]] = None
        if fields is not None:
            self.define(fields)

    def define(self, fields: Sequence[tuple[str, CType]]) -> None:
        """Complete the struct with its field list (exactly once)."""
        if self._fields is not None:
            raise ValueError(f"struct {self.tag} redefined")
        seen: set[str] = set()
        for name, ftype in fields:
            if name in seen:
                raise ValueError(f"duplicate field {name!r} in struct {self.tag}")
            seen.add(name)
            if isinstance(ftype, VoidType) or isinstance(ftype, FuncType):
                raise ValueError(f"field {name!r} of struct {self.tag} has invalid type")
        self._fields = tuple(fields)

    @property
    def is_complete(self) -> bool:
        return self._fields is not None

    @property
    def fields(self) -> tuple[tuple[str, CType], ...]:
        if self._fields is None:
            raise LayoutError(f"struct {self.tag} is incomplete")
        return self._fields

    def field_type(self, name: str) -> CType:
        """Type of field *name* (raises KeyError if absent)."""
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(f"struct {self.tag} has no field {name!r}")

    def field_index(self, name: str) -> int:
        """Index of field *name* within the declaration order."""
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        raise KeyError(f"struct {self.tag} has no field {name!r}")

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class FuncType(CType):
    """A function signature (declarations only — no function pointers in
    the migration-safe subset)."""

    ret: CType
    params: tuple[CType, ...]

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params) or "void"
        return f"{self.ret} ({args})"


# Singleton primitive instances used throughout the code base.
VOID = VoidType()
CHAR = PrimType("char")
UCHAR = PrimType("uchar")
SHORT = PrimType("short")
USHORT = PrimType("ushort")
INT = PrimType("int")
UINT = PrimType("uint")
LONG = PrimType("long")
ULONG = PrimType("ulong")
LLONG = PrimType("llong")
ULLONG = PrimType("ullong")
FLOAT = PrimType("float")
DOUBLE = PrimType("double")


def type_key(ctype: CType) -> tuple:
    """A hashable, deterministic structural key for *ctype*.

    Used to assign stable type ids shared by source and destination hosts
    (both compile the same program, so keys — and therefore ids — match).
    Struct identity is by tag, which the parser keeps globally unique.
    """
    if isinstance(ctype, VoidType):
        return ("void",)
    if isinstance(ctype, PrimType):
        return ("prim", ctype.kind)
    if isinstance(ctype, PointerType):
        return ("ptr", type_key(ctype.target))
    if isinstance(ctype, ArrayType):
        return ("arr", type_key(ctype.elem), ctype.length)
    if isinstance(ctype, StructType):
        return ("struct", ctype.tag)
    if isinstance(ctype, FuncType):
        return ("func", type_key(ctype.ret), tuple(type_key(p) for p in ctype.params))
    raise TypeError(f"unknown ctype {ctype!r}")


@dataclass(frozen=True, slots=True)
class Cell:
    """One primitive leaf of a flattened type.

    ``offset`` is the byte offset within the enclosing type *on the layout's
    architecture*; ``kind`` is a primitive kind string (``"ptr"`` for
    pointers); ``target`` is the static pointee type for pointer cells.
    """

    offset: int
    kind: str
    target: Optional[CType] = None


class TypeLayout:
    """Answers layout questions for one architecture, with memoization.

    One instance per (program, architecture) pair; all methods are pure
    functions of the type graph and are cached.
    """

    def __init__(self, arch: MachineArch) -> None:
        self.arch = arch
        # All memo tables are keyed on the *structural* type key, never on
        # object identity: temporary type objects may be garbage collected
        # and their ids reused, which would poison an id()-keyed cache.
        self._size: dict[tuple, int] = {}
        self._align: dict[tuple, int] = {}
        self._cells: dict[tuple, tuple[Cell, ...]] = {}
        self._offsets: dict[tuple, tuple[int, ...]] = {}
        self._field_offsets: dict[tuple, dict[str, int]] = {}
        self._memo_guard: set[tuple] = set()

    # -- size and alignment ------------------------------------------------

    def sizeof(self, ctype: CType) -> int:
        """``sizeof(ctype)`` on this architecture (with struct padding)."""
        key = type_key(ctype)
        size = self._size.get(key)
        if size is None:
            self._compute(ctype)
            size = self._size[key]
        return size

    def alignof(self, ctype: CType) -> int:
        """Alignment requirement of *ctype* on this architecture."""
        key = type_key(ctype)
        align = self._align.get(key)
        if align is None:
            self._compute(ctype)
            align = self._align[key]
        return align

    def field_offset(self, stype: StructType, name: str) -> int:
        """Byte offset of struct field *name* on this architecture."""
        key = type_key(stype)
        table = self._field_offsets.get(key)
        if table is None:
            self._compute(stype)
            table = self._field_offsets[key]
        return table[name]

    def _compute(self, ctype: CType) -> None:
        key = type_key(ctype)
        if key in self._memo_guard:
            raise LayoutError(f"type {ctype} contains itself by value")
        self._memo_guard.add(key)
        try:
            if isinstance(ctype, PrimType):
                size = self.arch.sizeof(ctype.kind)
                align = self.arch.alignof(ctype.kind)
            elif isinstance(ctype, PointerType):
                size = self.arch.sizeof("ptr")
                align = self.arch.alignof("ptr")
            elif isinstance(ctype, ArrayType):
                esize = self.sizeof(ctype.elem)
                align = self.alignof(ctype.elem)
                size = esize * ctype.length
            elif isinstance(ctype, StructType):
                offset = 0
                align = 1
                table: dict[str, int] = {}
                for fname, ftype in ctype.fields:
                    falign = self.alignof(ftype)
                    align = max(align, falign)
                    offset = _align_up(offset, falign)
                    table[fname] = offset
                    offset += self.sizeof(ftype)
                size = _align_up(offset, align) if offset else align  # empty structs: 1 unit
                self._field_offsets[key] = table
            elif isinstance(ctype, VoidType):
                raise LayoutError("void has no size")
            elif isinstance(ctype, FuncType):
                raise LayoutError("function types have no size")
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown ctype {ctype!r}")
        finally:
            self._memo_guard.discard(key)
        self._size[key] = size
        self._align[key] = align

    # -- flattened cells -----------------------------------------------------

    def cells(self, ctype: CType) -> tuple[Cell, ...]:
        """The flattened primitive leaves of *ctype*, in declaration order.

        The *sequence* of kinds is architecture-independent; only the byte
        offsets differ between architectures.
        """
        key = type_key(ctype)
        out = self._cells.get(key)
        if out is None:
            out = tuple(self._iter_cells(ctype, 0))
            self._cells[key] = out
            self._offsets[key] = tuple(c.offset for c in out)
        return out

    def _iter_cells(self, ctype: CType, base: int) -> Iterator[Cell]:
        if isinstance(ctype, PrimType):
            yield Cell(base, ctype.kind)
        elif isinstance(ctype, PointerType):
            yield Cell(base, "ptr", ctype.target)
        elif isinstance(ctype, ArrayType):
            stride = self.sizeof(ctype.elem)
            elem_cells = self.cells(ctype.elem)
            for i in range(ctype.length):
                off = base + i * stride
                for c in elem_cells:
                    yield Cell(off + c.offset, c.kind, c.target)
        elif isinstance(ctype, StructType):
            for fname, ftype in ctype.fields:
                foff = self.field_offset(ctype, fname)
                yield from self._iter_cells(ftype, base + foff)
        else:
            raise LayoutError(f"type {ctype} has no cells")

    def cell_count(self, ctype: CType) -> int:
        """Number of primitive leaves in *ctype* (architecture-independent)."""
        return len(self.cells(ctype))

    def cell_offset(self, ctype: CType, ordinal: int) -> int:
        """Byte offset of leaf *ordinal* (``ordinal == cell_count`` denotes
        the one-past-the-end position, as C pointer arithmetic allows)."""
        cells = self.cells(ctype)
        if ordinal == len(cells):
            return self.sizeof(ctype)
        return cells[ordinal].offset

    def ordinal_of_offset(self, ctype: CType, offset: int) -> int:
        """Cell ordinal whose byte offset equals *offset*.

        A pointer that refers to ``sizeof(ctype)`` (one past the end) maps
        to ordinal ``cell_count``.  Raises :class:`LayoutError` for offsets
        that do not land exactly on a leaf (such a pointer cannot be
        migrated portably — e.g. into struct padding).
        """
        self.cells(ctype)  # populate offset table
        offsets = self._offsets[type_key(ctype)]
        if offset == self.sizeof(ctype):
            return len(offsets)
        import bisect

        i = bisect.bisect_left(offsets, offset)
        if i < len(offsets) and offsets[i] == offset:
            return i
        raise LayoutError(
            f"byte offset {offset} in {ctype} does not address a primitive cell"
        )


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
