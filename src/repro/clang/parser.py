"""Recursive-descent parser for the migration-safe C subset.

The subset covers what the paper's workloads and pre-compiler need:

- declarations: primitives (all signed/unsigned integer widths, float,
  double), pointers, fixed-size (multi-dimensional) arrays, ``struct``
  (including self-referential via pointers), ``typedef``;
- statements: blocks, ``if/else``, ``while``, ``do/while``, ``for``,
  ``switch/case/default``, ``return``, ``break``, ``continue``,
  expression and declaration statements, and the explicit poll-point
  intrinsic ``migrate_here();``;
- expressions: the full C operator set at standard precedence (assignment
  and compound assignment, ternary, logical, bitwise, shifts, comparisons,
  arithmetic, casts, ``sizeof``, unary ops incl. ``*``/``&`` and pre/post
  increment, calls, indexing, ``.``/``->``).

Deliberately *not* parsed (they are migration-unsafe and are reported by
:mod:`repro.clang.unsafe` when encountered): ``union``, function pointers,
``goto``, varargs definitions, ``static`` locals (their persistence would
be silently lost).  ``const``/``register``/``volatile`` and file-scope
``static`` are accepted and ignored, as a pre-compiler would.  ``enum``
is supported (enumerators become ``int`` constants).
"""

from __future__ import annotations

from typing import Optional

from repro.clang import cast as A
from repro.clang.ctypes import (
    ArrayType,
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    FuncType,
    INT,
    LLONG,
    LONG,
    PointerType,
    PrimType,
    SHORT,
    StructType,
    UCHAR,
    UINT,
    ULLONG,
    ULONG,
    USHORT,
    VOID,
    VoidType,
)
from repro.clang.lexer import Token, tokenize

__all__ = ["ParseError", "Parser", "parse"]


class ParseError(Exception):
    """Syntax or simple semantic error during parsing."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TYPE_KEYWORDS = frozenset(
    ("void", "char", "short", "int", "long", "unsigned", "signed", "float", "double",
     "struct", "union", "enum", "const", "static", "extern", "register", "volatile",
     "auto")
)

_QUALIFIERS = frozenset(("const", "static", "extern", "register", "volatile", "auto"))

#: name of the explicit poll-point intrinsic
POLL_INTRINSIC = "migrate_here"


class Parser:
    """One-pass parser producing a :class:`repro.clang.cast.TranslationUnit`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: dict[str, StructType] = {}
        self.typedefs: dict[str, CType] = {}
        self.enum_constants: dict[str, int] = {}
        self._anon_counter = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        t = self.tokens[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        t = self.tok
        if t.kind != kind or (value is not None and t.value != value):
            want = value or kind
            raise ParseError(f"expected {want!r}, found {t.value!r}", t.line)
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        t = self.tok
        if t.kind == kind and (value is None or t.value == value):
            return self.advance()
        return None

    def _err(self, message: str) -> ParseError:
        return ParseError(message, self.tok.line)

    # -- entry point -----------------------------------------------------------

    def parse(self) -> A.TranslationUnit:
        """Parse the whole translation unit."""
        unit = A.TranslationUnit(line=1)
        while self.tok.kind != "eof":
            self._parse_top_level(unit)
        unit.structs = dict(self.structs)
        return unit

    def _parse_top_level(self, unit: A.TranslationUnit) -> None:
        line = self.tok.line
        if self.accept("kw", "typedef"):
            base = self._parse_base_type()
            name, ctype = self._parse_declarator(base)
            self.expect("punct", ";")
            self.typedefs[name] = ctype
            return

        if self.tok.kind == "kw" and self.tok.value == "union":
            raise self._err("union is migration-unsafe and not supported")

        # enum definition with no declarator: `enum tag { ... };`
        if (
            self.tok.kind == "kw"
            and self.tok.value == "enum"
            and (self.peek().value == "{" or self.peek(2).value == "{")
        ):
            save = self.pos
            self._parse_base_type()
            if self.accept("punct", ";"):
                return
            self.pos = save
            base = self._parse_base_type()
            name, ctype = self._parse_declarator(base)
            # fall through to the generic declarator handling below by
            # re-entering: simplest is to treat it as a global variable
            while True:
                init = None
                init_list = None
                if self.accept("punct", "="):
                    if self.tok.value == "{":
                        init_list = self._parse_init_list()
                    else:
                        init = self._parse_assignment()
                unit.globals.append(
                    A.GlobalVar(name=name, ctype=ctype, init=init, init_list=init_list, line=line)
                )
                if self.accept("punct", ","):
                    name, ctype = self._parse_declarator(base)
                    continue
                self.expect("punct", ";")
                break
            return

        # struct definition with no declarator: `struct tag { ... };`
        if (
            self.tok.kind == "kw"
            and self.tok.value == "struct"
            and self.peek().kind == "id"
            and self.peek(2).value == "{"
        ):
            self._parse_base_type()
            self.expect("punct", ";")
            return

        base = self._parse_base_type()
        if self.accept("punct", ";"):
            return  # bare `struct {...};` or stray type
        name, ctype = self._parse_declarator(base)

        if isinstance(ctype, FuncType):
            if self.accept("punct", ";"):
                return  # prototype — bodies are what we execute
            body = self._parse_block()
            params = self._pending_params
            unit.functions.append(
                A.FuncDef(name=name, ret=ctype.ret, params=params, body=body, line=line)
            )
            return

        # global variable(s)
        while True:
            init = None
            init_list = None
            if self.accept("punct", "="):
                if self.tok.value == "{":
                    init_list = self._parse_init_list()
                else:
                    init = self._parse_assignment()
            unit.globals.append(
                A.GlobalVar(name=name, ctype=ctype, init=init, init_list=init_list, line=line)
            )
            if self.accept("punct", ","):
                name, ctype = self._parse_declarator(base)
                continue
            self.expect("punct", ";")
            break

    # -- types ----------------------------------------------------------------

    def _is_type_start(self, tok: Token) -> bool:
        if tok.kind == "kw" and tok.value in _TYPE_KEYWORDS:
            return True
        return tok.kind == "id" and tok.value in self.typedefs

    def _parse_base_type(self) -> CType:
        """Parse a type specifier (possibly a struct definition)."""
        while self.tok.kind == "kw" and self.tok.value in _QUALIFIERS:
            self.advance()

        t = self.tok
        if t.kind == "id" and t.value in self.typedefs:
            self.advance()
            return self.typedefs[t.value]

        if t.kind != "kw":
            raise self._err(f"expected type, found {t.value!r}")

        if t.value == "union":
            raise self._err("union is migration-unsafe and not supported")

        if t.value == "struct":
            self.advance()
            return self._parse_struct_spec()

        if t.value == "enum":
            self.advance()
            return self._parse_enum_spec()

        # collect primitive specifier words
        words: list[str] = []
        while self.tok.kind == "kw" and self.tok.value in (
            "void", "char", "short", "int", "long", "unsigned", "signed",
            "float", "double",
        ):
            words.append(self.advance().value)
            while self.tok.kind == "kw" and self.tok.value in _QUALIFIERS:
                self.advance()
        if not words:
            raise self._err(f"expected type, found {self.tok.value!r}")
        return self._prim_from_words(words, t.line)

    def _prim_from_words(self, words: list[str], line: int) -> CType:
        unsigned = "unsigned" in words
        signed = "signed" in words
        if unsigned and signed:
            raise ParseError("both signed and unsigned", line)
        core = [w for w in words if w not in ("unsigned", "signed")]
        key = " ".join(core) or "int"
        table = {
            "void": VOID,
            "char": UCHAR if unsigned else CHAR,
            "short": USHORT if unsigned else SHORT,
            "short int": USHORT if unsigned else SHORT,
            "int": UINT if unsigned else INT,
            "long": ULONG if unsigned else LONG,
            "long int": ULONG if unsigned else LONG,
            "long long": ULLONG if unsigned else LLONG,
            "long long int": ULLONG if unsigned else LLONG,
            "float": FLOAT,
            "double": DOUBLE,
            "long double": DOUBLE,  # modeled as double
        }
        if key not in table:
            raise ParseError(f"unsupported type specifier {' '.join(words)!r}", line)
        return table[key]

    def _parse_struct_spec(self) -> StructType:
        tag: Optional[str] = None
        if self.tok.kind == "id":
            tag = self.advance().value
        if self.tok.value != "{":
            if tag is None:
                raise self._err("anonymous struct must have a body")
            # forward/usage reference
            stype = self.structs.get(tag)
            if stype is None:
                stype = StructType(tag)
                self.structs[tag] = stype
            return stype

        if tag is None:
            self._anon_counter += 1
            tag = f"__anon_{self._anon_counter}"
        stype = self.structs.get(tag)
        if stype is None:
            stype = StructType(tag)
            self.structs[tag] = stype
        elif stype.is_complete:
            raise self._err(f"struct {tag} redefined")

        self.expect("punct", "{")
        fields: list[tuple[str, CType]] = []
        while not self.accept("punct", "}"):
            base = self._parse_base_type()
            while True:
                fname, ftype = self._parse_declarator(base)
                fields.append((fname, ftype))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ";")
        stype.define(fields)
        return stype

    def _parse_enum_spec(self) -> CType:
        """Parse an enum specifier; enumerators become int constants and
        the enum type itself is ``int`` (the common ABI)."""
        if self.tok.kind == "id":
            self.advance()  # tag recorded for syntax only
        if self.accept("punct", "{"):
            next_value = 0
            while not self.accept("punct", "}"):
                name_tok = self.expect("id")
                if self.accept("punct", "="):
                    next_value = self._parse_const_int()
                if name_tok.value in self.enum_constants:
                    raise ParseError(
                        f"duplicate enumerator {name_tok.value!r}", name_tok.line
                    )
                self.enum_constants[name_tok.value] = next_value
                next_value += 1
                if not self.accept("punct", ","):
                    self.expect("punct", "}")
                    break
        return INT

    def _parse_declarator(self, base: CType) -> tuple[str, CType]:
        """Parse ``* ... name [dims] | name(params)`` over *base*."""
        ctype = base
        while self.accept("punct", "*"):
            while self.tok.kind == "kw" and self.tok.value in _QUALIFIERS:
                self.advance()
            ctype = PointerType(ctype)

        if self.tok.value == "(":
            raise self._err("parenthesized declarators (function pointers) are migration-unsafe")

        name_tok = self.expect("id")
        name = name_tok.value

        if self.tok.value == "(":
            params = self._parse_params()
            self._pending_params = params
            return name, FuncType(ctype, tuple(p.ctype for p in params))

        dims: list[int] = []
        while self.accept("punct", "["):
            dims.append(self._parse_const_int())
            self.expect("punct", "]")
        for d in reversed(dims):
            ctype = ArrayType(ctype, d)
        return name, ctype

    def _parse_abstract_type(self) -> CType:
        """Parse a type-name (for casts and sizeof): base + ``*``s + dims."""
        base = self._parse_base_type()
        ctype = base
        while self.accept("punct", "*"):
            ctype = PointerType(ctype)
        dims: list[int] = []
        while self.accept("punct", "["):
            dims.append(self._parse_const_int())
            self.expect("punct", "]")
        for d in reversed(dims):
            ctype = ArrayType(ctype, d)
        return ctype

    def _parse_params(self) -> list[A.Param]:
        self.expect("punct", "(")
        params: list[A.Param] = []
        if self.accept("punct", ")"):
            return params
        if self.tok.kind == "kw" and self.tok.value == "void" and self.peek().value == ")":
            self.advance()
            self.expect("punct", ")")
            return params
        while True:
            if self.tok.value == "...":
                raise self._err("varargs functions are migration-unsafe")
            line = self.tok.line
            base = self._parse_base_type()
            pname, ptype = self._parse_declarator_opt_name(base)
            if isinstance(ptype, ArrayType):
                ptype = PointerType(ptype.elem)  # array params decay
            params.append(A.Param(name=pname, ctype=ptype, line=line))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return params

    def _parse_declarator_opt_name(self, base: CType) -> tuple[str, CType]:
        """Declarator whose name may be omitted (prototypes)."""
        ctype = base
        while self.accept("punct", "*"):
            ctype = PointerType(ctype)
        name = ""
        if self.tok.kind == "id":
            name = self.advance().value
        dims: list[int] = []
        while self.accept("punct", "["):
            if self.tok.value == "]":
                dims.append(0)  # `a[]` param — decays anyway
                self.advance()
                continue
            dims.append(self._parse_const_int())
            self.expect("punct", "]")
        for d in reversed(dims):
            ctype = ArrayType(ctype, max(d, 1))
        return name, ctype

    def _parse_const_int(self) -> int:
        expr = self._parse_ternary()
        value = _const_eval(expr)
        if value is None:
            raise ParseError("expected integer constant expression", expr.line)
        return int(value)

    def _parse_init_list(self) -> list[A.Expr]:
        self.expect("punct", "{")
        items: list[A.Expr] = []
        while self.tok.value != "}":
            items.append(self._parse_assignment())
            if not self.accept("punct", ","):
                break
        self.expect("punct", "}")
        return items

    # -- statements -------------------------------------------------------------

    def _parse_block(self) -> A.Block:
        line = self.tok.line
        self.expect("punct", "{")
        body: list[A.Stmt] = []
        while not self.accept("punct", "}"):
            body.append(self._parse_statement())
        return A.Block(body=body, line=line)

    def _parse_statement(self) -> A.Stmt:
        t = self.tok
        line = t.line

        if t.value == "{":
            return self._parse_block()

        if t.kind == "kw":
            if t.value == "if":
                self.advance()
                self.expect("punct", "(")
                cond = self._parse_expression()
                self.expect("punct", ")")
                then = self._parse_statement()
                other = self._parse_statement() if self.accept("kw", "else") else None
                return A.If(cond=cond, then=then, other=other, line=line)
            if t.value == "while":
                self.advance()
                self.expect("punct", "(")
                cond = self._parse_expression()
                self.expect("punct", ")")
                body = self._parse_statement()
                return A.While(cond=cond, body=body, line=line)
            if t.value == "do":
                self.advance()
                body = self._parse_statement()
                self.expect("kw", "while")
                self.expect("punct", "(")
                cond = self._parse_expression()
                self.expect("punct", ")")
                self.expect("punct", ";")
                return A.DoWhile(body=body, cond=cond, line=line)
            if t.value == "for":
                self.advance()
                self.expect("punct", "(")
                init = None if self.tok.value == ";" else self._parse_expression()
                self.expect("punct", ";")
                cond = None if self.tok.value == ";" else self._parse_expression()
                self.expect("punct", ";")
                step = None if self.tok.value == ")" else self._parse_expression()
                self.expect("punct", ")")
                body = self._parse_statement()
                return A.For(init=init, cond=cond, step=step, body=body, line=line)
            if t.value == "return":
                self.advance()
                value = None if self.tok.value == ";" else self._parse_expression()
                self.expect("punct", ";")
                return A.Return(value=value, line=line)
            if t.value == "break":
                self.advance()
                self.expect("punct", ";")
                return A.Break(line=line)
            if t.value == "continue":
                self.advance()
                self.expect("punct", ";")
                return A.Continue(line=line)
            if t.value == "switch":
                return self._parse_switch()
            if t.value == "goto":
                raise self._err("goto is migration-unsafe and not supported")
            if t.value == "static":
                # a static local would silently lose its persistence in
                # our frame model; refuse rather than mis-execute
                raise self._err(
                    "static local variables are not supported; use a global"
                )
            if t.value in _TYPE_KEYWORDS:
                return self._parse_decl_stmt()

        if t.kind == "id" and t.value in self.typedefs and self.peek().kind in ("id", "punct"):
            # `mytype x;` vs expression starting with a typedef'd name —
            # a declaration iff followed by `*` or an identifier.
            nxt = self.peek()
            if nxt.value == "*" or nxt.kind == "id":
                return self._parse_decl_stmt()

        if t.kind == "id" and t.value == POLL_INTRINSIC and self.peek().value == "(":
            self.advance()
            self.expect("punct", "(")
            self.expect("punct", ")")
            self.expect("punct", ";")
            return A.PollHint(line=line)

        if self.accept("punct", ";"):
            return A.Block(body=[], line=line)  # empty statement

        expr = self._parse_expression()
        self.expect("punct", ";")
        return A.ExprStmt(expr=expr, line=line)

    def _parse_decl_stmt(self) -> A.DeclStmt:
        line = self.tok.line
        base = self._parse_base_type()
        decls: list[A.Decl] = []
        while True:
            name, ctype = self._parse_declarator(base)
            if isinstance(ctype, FuncType):
                raise ParseError("local function declarations are not supported", line)
            init = None
            init_list = None
            if self.accept("punct", "="):
                if self.tok.value == "{":
                    init_list = self._parse_init_list()
                else:
                    init = self._parse_assignment()
            decls.append(A.Decl(name=name, ctype=ctype, init=init, init_list=init_list, line=line))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        return A.DeclStmt(decls=decls, line=line)

    def _parse_switch(self) -> A.Switch:
        line = self.tok.line
        self.expect("kw", "switch")
        self.expect("punct", "(")
        cond = self._parse_expression()
        self.expect("punct", ")")
        self.expect("punct", "{")
        cases: list[A.SwitchCase] = []
        current: Optional[A.SwitchCase] = None
        while not self.accept("punct", "}"):
            if self.accept("kw", "case"):
                value = self._parse_const_int()
                self.expect("punct", ":")
                current = A.SwitchCase(value=value, line=self.tok.line)
                cases.append(current)
            elif self.accept("kw", "default"):
                self.expect("punct", ":")
                current = A.SwitchCase(value=None, line=self.tok.line)
                cases.append(current)
            else:
                if current is None:
                    raise self._err("statement before first case label")
                current.body.append(self._parse_statement())
        return A.Switch(cond=cond, cases=cases, line=line)

    # -- expressions -------------------------------------------------------------

    def _parse_expression(self) -> A.Expr:
        expr = self._parse_assignment()
        while self.accept("punct", ","):
            # comma operator: evaluate-and-discard left; model as Binary ","
            right = self._parse_assignment()
            expr = A.Binary(op=",", left=expr, right=right, line=expr.line)
        return expr

    _ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

    def _parse_assignment(self) -> A.Expr:
        left = self._parse_ternary()
        t = self.tok
        if t.kind == "punct" and t.value in self._ASSIGN_OPS:
            self.advance()
            value = self._parse_assignment()
            op = "" if t.value == "=" else t.value[:-1]
            return A.Assign(op=op, target=left, value=value, line=t.line)
        return left

    def _parse_ternary(self) -> A.Expr:
        cond = self._parse_binary(0)
        if self.accept("punct", "?"):
            then = self._parse_expression()
            self.expect("punct", ":")
            other = self._parse_ternary()
            return A.Cond(cond=cond, then=then, other=other, line=cond.line)
        return cond

    # binary operator precedence table, lowest first
    _BIN_LEVELS: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(self._BIN_LEVELS):
            return self._parse_unary()
        ops = self._BIN_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.tok.kind == "punct" and self.tok.value in ops:
            op = self.advance().value
            right = self._parse_binary(level + 1)
            left = A.Binary(op=op, left=left, right=right, line=left.line)
        return left

    def _parse_unary(self) -> A.Expr:
        t = self.tok
        if t.kind == "punct":
            if t.value in ("-", "+", "!", "~", "*", "&"):
                self.advance()
                operand = self._parse_unary()
                if t.value == "+":
                    return operand
                return A.Unary(op=t.value, operand=operand, line=t.line)
            if t.value in ("++", "--"):
                self.advance()
                operand = self._parse_unary()
                return A.Unary(op=t.value, operand=operand, line=t.line)
            if t.value == "(" and self._is_type_start(self.peek()):
                self.advance()
                to = self._parse_abstract_type()
                self.expect("punct", ")")
                operand = self._parse_unary()
                return A.Cast(to=to, operand=operand, line=t.line)
        if t.kind == "kw" and t.value == "sizeof":
            self.advance()
            if self.tok.value == "(" and self._is_type_start(self.peek()):
                self.expect("punct", "(")
                of = self._parse_abstract_type()
                self.expect("punct", ")")
                return A.SizeofType(of=of, line=t.line)
            operand = self._parse_unary()
            return A.SizeofExpr(operand=operand, line=t.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            t = self.tok
            if t.value == "(" and isinstance(expr, A.Ident):
                self.advance()
                args: list[A.Expr] = []
                if self.tok.value != ")":
                    while True:
                        args.append(self._parse_assignment())
                        if not self.accept("punct", ","):
                            break
                self.expect("punct", ")")
                expr = A.Call(func=expr.name, args=args, line=expr.line)
            elif t.value == "(":
                raise ParseError(
                    "calls through expressions (function pointers) are migration-unsafe",
                    t.line,
                )
            elif self.accept("punct", "["):
                index = self._parse_expression()
                self.expect("punct", "]")
                expr = A.Index(base=expr, index=index, line=t.line)
            elif self.accept("punct", "."):
                name = self.expect("id").value
                expr = A.Member(base=expr, name=name, arrow=False, line=t.line)
            elif self.accept("punct", "->"):
                name = self.expect("id").value
                expr = A.Member(base=expr, name=name, arrow=True, line=t.line)
            elif self.accept("punct", "++"):
                expr = A.Unary(op="p++", operand=expr, line=t.line)
            elif self.accept("punct", "--"):
                expr = A.Unary(op="p--", operand=expr, line=t.line)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        t = self.tok
        if t.kind == "int":
            self.advance()
            text = t.value.rstrip("uUlL")
            value = int(text, 0)
            suffix = t.value[len(text):].lower()
            return A.IntLit(value=value, unsigned="u" in suffix, long="l" in suffix, line=t.line)
        if t.kind == "float":
            self.advance()
            single = t.value[-1] in "fF"
            text = t.value.rstrip("fF")
            return A.FloatLit(value=float(text), single=single, line=t.line)
        if t.kind == "char":
            self.advance()
            return A.CharLit(value=int(t.value), line=t.line)
        if t.kind == "str":
            self.advance()
            return A.StringLit(value=t.value, line=t.line)
        if t.kind == "id":
            self.advance()
            if t.value == "NULL":
                return A.Null(line=t.line)
            if t.value in self.enum_constants:
                return A.IntLit(value=self.enum_constants[t.value], line=t.line)
            return A.Ident(name=t.value, line=t.line)
        if t.value == "(":
            self.advance()
            expr = self._parse_expression()
            self.expect("punct", ")")
            return expr
        raise self._err(f"unexpected token {t.value!r}")


def _const_eval(expr: A.Expr) -> Optional[int]:
    """Evaluate an integer constant expression (for array dims and cases)."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.CharLit):
        return expr.value
    if isinstance(expr, A.Unary) and expr.op == "-":
        v = _const_eval(expr.operand)
        return None if v is None else -v
    if isinstance(expr, A.Unary) and expr.op == "~":
        v = _const_eval(expr.operand)
        return None if v is None else ~v
    if isinstance(expr, A.Binary):
        lv = _const_eval(expr.left)
        rv = _const_eval(expr.right)
        if lv is None or rv is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: _c_div(a, b),
            "%": lambda a, b: a - _c_div(a, b) * b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
        }
        fn = ops.get(expr.op)
        return None if fn is None else fn(lv, rv)
    return None


def _c_div(a: int, b: int) -> int:
    """C integer division (truncation toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def parse(source: str) -> A.TranslationUnit:
    """Parse C *source* into a translation unit."""
    return Parser(source).parse()
