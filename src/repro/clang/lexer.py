"""Tokenizer for the migration-safe C subset.

Handles the usual C token classes plus a tiny preprocessor: ``#include``
lines are ignored (the runtime library is built in), and object-like
``#define NAME value`` macros are substituted textually (enough for the
workloads' ``#define N 100`` style constants).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]


class LexError(Exception):
    """Raised for unrecognizable input."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = frozenset(
    """
    void char short int long unsigned signed float double
    struct union enum typedef sizeof
    if else while do for return break continue switch case default goto
    static extern const register volatile auto
    """.split()
)

#: token kinds: kw, id, int, float, char, str, punct, eof
@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


_PUNCTS = [
    # three-char first, then two, then one (maximal munch)
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<float>  (?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]? | \d+[eE][+-]?\d+[fF]? | \d+\.\d*[fF] | \d+[fF](?![\w]) )
  | (?P<int>    0[xX][0-9a-fA-F]+[uUlL]* | \d+[uUlL]* )
  | (?P<id>     [A-Za-z_]\w* )
  | (?P<char>   '(?:\\(?:x[0-9a-fA-F]+|.)|[^'\\])' )
  | (?P<str>    "(?:\\.|[^"\\])*" )
  | (?P<punct>  %s )
  | (?P<ws>     [ \t\r]+ )
  | (?P<nl>     \n )
    """
    % "|".join(re.escape(p) for p in _PUNCTS),
    re.VERBOSE,
)

_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)\s+(.*?)\s*$")
_HASH_RE = re.compile(r"^\s*#")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "a": "\a",
}


def _unescape(body: str, line: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise LexError("dangling escape", line)
            esc = body[i]
            if esc in _ESCAPES:
                out.append(_ESCAPES[esc])
            elif esc == "x":
                j = i + 1
                while j < len(body) and body[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j == i + 1:
                    raise LexError("bad hex escape", line)
                out.append(chr(int(body[i + 1 : j], 16)))
                i = j - 1
            else:
                raise LexError(f"unknown escape \\{esc}", line)
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def _preprocess(source: str) -> tuple[str, dict[str, str]]:
    """Strip comments, record ``#define`` macros, blank out other # lines.

    Comments and directives are replaced by equivalent whitespace so line
    numbers in diagnostics stay correct.
    """
    def _blank(m: re.Match[str]) -> str:
        return "".join("\n" if c == "\n" else " " for c in m.group(0))

    source = _BLOCK_COMMENT_RE.sub(_blank, source)
    source = _LINE_COMMENT_RE.sub(_blank, source)

    defines: dict[str, str] = {}
    out_lines: list[str] = []
    for line in source.split("\n"):
        m = _DEFINE_RE.match(line)
        if m:
            defines[m.group(1)] = m.group(2)
            out_lines.append("")
        elif _HASH_RE.match(line):
            out_lines.append("")  # #include and friends: the runtime is built in
        else:
            out_lines.append(line)
    return "\n".join(out_lines), defines


def tokenize(source: str) -> list[Token]:
    """Tokenize C *source*, returning a list ending with an ``eof`` token."""
    text, defines = _preprocess(source)
    tokens: list[Token] = []
    _scan(text, 1, tokens, defines, depth=0)
    last_line = tokens[-1].line if tokens else 1
    tokens.append(Token("eof", "", last_line))
    return tokens


def _scan(
    text: str, line: int, out: list[Token], defines: dict[str, str], depth: int
) -> int:
    """Scan *text* starting at *line*, appending tokens; returns final line."""
    if depth > 16:
        raise LexError("macro expansion too deep", line)
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise LexError(f"unexpected character {text[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup
        value = m.group()
        if kind == "nl":
            line += 1
        elif kind == "ws":
            pass
        elif kind == "id":
            if value in defines:
                # textual macro substitution (object-like macros only)
                line = _scan(defines[value], line, out, defines, depth + 1)
            elif value in KEYWORDS:
                out.append(Token("kw", value, line))
            else:
                out.append(Token("id", value, line))
        elif kind == "int":
            out.append(Token("int", value, line))
        elif kind == "float":
            out.append(Token("float", value, line))
        elif kind == "char":
            body = _unescape(value[1:-1], line)
            if len(body) != 1:
                raise LexError(f"bad character literal {value}", line)
            out.append(Token("char", str(ord(body)), line))
        elif kind == "str":
            out.append(Token("str", _unescape(value[1:-1], line), line))
        elif kind == "punct":
            out.append(Token("punct", value, line))
        else:  # pragma: no cover - regex is exhaustive
            raise LexError(f"bad token {value!r}", line)
    return line


def token_stream(source: str) -> Iterator[Token]:
    """Convenience generator over :func:`tokenize`."""
    yield from tokenize(source)
