"""Detection of migration-unsafe C features.

The paper (citing Smith & Hutchinson's TUI work) requires the input
program to avoid language features that make process state untransportable
between architectures.  Some are rejected outright by the parser (``union``,
``goto``, varargs definitions, function pointers); this module performs the
AST-level checks for the remainder:

- casting a pointer to an integer type, or an integer to a pointer
  (addresses are meaningless on the destination host);
- casting between incompatible pointer types (other than through
  ``void *`` and ``char *``, which the collection library can track);
- taking ``sizeof`` into stored data in a way that bakes in the source
  architecture is inherently unsafe *in general*, but the idiomatic
  ``malloc(n * sizeof(T))`` is safe because the pre-compiler rewrites it
  into an element-count allocation — so ``sizeof`` itself is not flagged.

The checker is a best-effort static scan, as in the paper: it flags what it
can prove syntactically; deeper violations surface as compile-time or
migration-time errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.clang import cast as A
from repro.clang.ctypes import (
    ArrayType,
    CType,
    PointerType,
    PrimType,
    StructType,
    VoidType,
)

__all__ = ["UnsafeFeature", "check_migration_safety", "MigrationSafetyError"]


@dataclass(frozen=True)
class UnsafeFeature:
    """One detected migration-unsafe construct."""

    kind: str  # e.g. "ptr-to-int-cast"
    detail: str
    line: int
    function: str

    def __str__(self) -> str:
        where = f"in {self.function}" if self.function else "at file scope"
        return f"line {self.line} {where}: {self.kind}: {self.detail}"


class MigrationSafetyError(Exception):
    """Raised by :func:`check_migration_safety` in strict mode."""

    def __init__(self, features: list[UnsafeFeature]) -> None:
        self.features = features
        super().__init__(
            "migration-unsafe features found:\n"
            + "\n".join(f"  - {f}" for f in features)
        )


def _is_pointerish(ctype: CType) -> bool:
    return isinstance(ctype, (PointerType, ArrayType))


def _is_integer(ctype: CType) -> bool:
    return isinstance(ctype, PrimType) and ctype.is_integer


def _compatible_pointer_cast(to: PointerType, frm: CType) -> bool:
    """Pointer casts the collection library can survive."""
    if not _is_pointerish(frm):
        return False
    src_target = frm.target if isinstance(frm, PointerType) else frm.elem
    dst_target = to.target
    if isinstance(dst_target, VoidType) or isinstance(src_target, VoidType):
        return True  # through void*
    if isinstance(dst_target, PrimType) and dst_target.kind in ("char", "uchar"):
        return True  # char* aliasing is tracked at byte granularity
    if isinstance(src_target, PrimType) and src_target.kind in ("char", "uchar"):
        return True
    # identical structural targets are fine
    from repro.clang.ctypes import type_key

    return type_key(src_target) == type_key(dst_target)


def _syntactic_type(expr: A.Expr) -> CType | None:
    """Best-effort type of *expr*; uses annotations if the checker ran."""
    if expr.ctype is not None:
        return expr.ctype
    if isinstance(expr, A.Unary) and expr.op == "&":
        inner = _syntactic_type(expr.operand)
        return PointerType(inner) if inner is not None else PointerType(VoidType())
    if isinstance(expr, A.IntLit):
        return PrimType("int")
    if isinstance(expr, A.FloatLit):
        return PrimType("double")
    if isinstance(expr, A.Null):
        return PointerType(VoidType())
    if isinstance(expr, A.Cast):
        return expr.to
    return None


def _walk_exprs(node: object) -> Iterator[A.Expr]:
    """Yield every expression node reachable from *node*."""
    if isinstance(node, A.Expr):
        yield node
    if hasattr(node, "__dict__"):
        values = vars(node).values()
    else:
        return
    for value in values:
        if isinstance(value, A.Node):
            yield from _walk_exprs(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Node):
                    yield from _walk_exprs(item)


def check_migration_safety(
    unit: A.TranslationUnit, strict: bool = False
) -> list[UnsafeFeature]:
    """Scan a translation unit for migration-unsafe constructs.

    Returns the list of findings; with ``strict=True`` raises
    :class:`MigrationSafetyError` if any are found.
    """
    findings: list[UnsafeFeature] = []

    def scan(body: object, fname: str) -> None:
        for expr in _walk_exprs(body):
            if isinstance(expr, A.Cast):
                to = expr.to
                frm = _syntactic_type(expr.operand)
                if isinstance(to, PointerType):
                    if frm is not None and _is_integer(frm) and not isinstance(
                        expr.operand, A.IntLit
                    ):
                        findings.append(
                            UnsafeFeature(
                                "int-to-ptr-cast",
                                f"integer value cast to {to}",
                                expr.line,
                                fname,
                            )
                        )
                    elif isinstance(expr.operand, A.IntLit) and expr.operand.value != 0:
                        findings.append(
                            UnsafeFeature(
                                "absolute-address",
                                f"absolute address constant cast to {to}",
                                expr.line,
                                fname,
                            )
                        )
                    elif frm is not None and _is_pointerish(frm):
                        if not _compatible_pointer_cast(to, frm):
                            findings.append(
                                UnsafeFeature(
                                    "incompatible-ptr-cast",
                                    f"cast from {frm} to {to}",
                                    expr.line,
                                    fname,
                                )
                            )
                elif _is_integer(to) and frm is not None and _is_pointerish(frm):
                    findings.append(
                        UnsafeFeature(
                            "ptr-to-int-cast",
                            f"{frm} cast to {to}",
                            expr.line,
                            fname,
                        )
                    )

    for gvar in unit.globals:
        if gvar.init is not None:
            scan(gvar.init, "")
    for func in unit.functions:
        scan(func.body, func.name)

    if strict and findings:
        raise MigrationSafetyError(findings)
    return findings
