"""Mini-C front end: lexer, parser, type system, and safety checks.

The paper's pre-compiler operates on C source.  This subpackage provides
the language substrate it needs:

- :mod:`repro.clang.ctypes` — the C type system with per-architecture
  layout (sizes, alignment, struct padding, flattened element ordinals).
- :mod:`repro.clang.lexer` / :mod:`repro.clang.parser` — tokenizer and
  recursive-descent parser for the migration-safe C subset.
- :mod:`repro.clang.cast` — AST node definitions.
- :mod:`repro.clang.unsafe` — detection of migration-unsafe C features
  (Smith & Hutchinson-style checks referenced by the paper).
"""

from repro.clang.ctypes import (
    ArrayType,
    CType,
    FuncType,
    PointerType,
    PrimType,
    StructType,
    TypeLayout,
    VoidType,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    VOID,
)
from repro.clang.lexer import LexError, Token, tokenize
from repro.clang.parser import ParseError, parse
from repro.clang.unsafe import UnsafeFeature, check_migration_safety

__all__ = [
    "ArrayType",
    "CType",
    "FuncType",
    "PointerType",
    "PrimType",
    "StructType",
    "TypeLayout",
    "VoidType",
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "SHORT",
    "UCHAR",
    "UINT",
    "ULONG",
    "VOID",
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "parse",
    "UnsafeFeature",
    "check_migration_safety",
]
