"""Source texts of the evaluation workloads.

Each generator returns migration-safe C source parameterized on problem
size (sizes are compile-time constants because the paper's linpack keeps
its matrices in local arrays whose size is fixed at compile time).

Substitutions from the originals (documented in DESIGN.md §2):

- the paper's "pointer to array of 10 integers" (``int (*p)[10]``) uses a
  parenthesized declarator, which is outside our subset; the MSR-
  equivalent shape — a pointer to a 10-element heap block — is used
  instead (one block, count 10, same graph);
- linpack is condensed to matgen + dgefa + dgesl + residual check with
  the BLAS-1 kernels (daxpy, idamax, dscal) inlined as functions;
- the bitonic sort program is the binary-tree sort the paper describes
  ("a binary tree is used to store randomly generated integer numbers …
  sorted when the tree is traversed", with "extensive memory allocations
  and recursions").
"""

from __future__ import annotations

__all__ = [
    "test_pointer_source",
    "linpack_source",
    "bitonic_source",
    "matmul_source",
    "nbody_source",
    "hashtable_source",
    "structgrid_source",
]


def test_pointer_source() -> str:
    """The §4.1 synthetic pointer-structure program."""
    return r"""
/* test_pointer: every pointer shape the collection library must handle. */

struct tree {
    int value;
    struct tree *left;
    struct tree *right;
};

struct dag {
    int tag;
    struct dag *a;
    struct dag *b;
};

struct tree *troot;
struct dag *shared;
struct dag *droot;

struct tree *tree_insert(struct tree *t, int v) {
    if (t == NULL) {
        t = (struct tree *) malloc(sizeof(struct tree));
        t->value = v;
        t->left = NULL;
        t->right = NULL;
        return t;
    }
    if (v < t->value) t->left = tree_insert(t->left, v);
    else t->right = tree_insert(t->right, v);
    return t;
}

int tree_sum(struct tree *t) {
    if (t == NULL) return 0;
    return t->value + tree_sum(t->left) + tree_sum(t->right);
}

int dag_walk(struct dag *d, int depth) {
    if (d == NULL) return 0;
    if (depth > 8) return d->tag;
    return d->tag + dag_walk(d->a, depth + 1) + dag_walk(d->b, depth + 1);
}

int main() {
    int i;
    int checksum = 0;
    int *pi;                /* pointer to integer                      */
    int *parr;              /* pointer to an array of 10 integers     */
    int **pptrs;            /* pointer to 10 pointers to integers     */
    int stack_cell;

    /* build a search tree from pseudo-random values */
    srand(42);
    for (i = 0; i < 64; i++) {
        troot = tree_insert(troot, rand() % 1000);
        migrate_here();
    }

    /* simple pointer to int: into the heap and into the stack */
    pi = (int *) malloc(sizeof(int));
    *pi = 1234;
    stack_cell = 77;

    /* pointer to array of 10 ints (one heap block, count 10) */
    parr = (int *) malloc(10 * sizeof(int));
    for (i = 0; i < 10; i++) parr[i] = i * i;

    /* pointer to array of 10 pointers to ints */
    pptrs = (int **) malloc(10 * sizeof(int *));
    for (i = 0; i < 10; i++) {
        pptrs[i] = (int *) malloc(sizeof(int));
        *pptrs[i] = 100 + i;
    }
    pptrs[3] = pi;          /* aliasing: two paths reach the same block */
    pptrs[4] = &stack_cell; /* pointer into the stack segment           */
    pptrs[5] = &parr[7];    /* interior pointer into a sibling block    */

    /* tree-like structure with shared nodes (a DAG, tests dedup) */
    shared = (struct dag *) malloc(sizeof(struct dag));
    shared->tag = 5;
    shared->a = NULL;
    shared->b = NULL;
    droot = (struct dag *) malloc(sizeof(struct dag));
    droot->tag = 1;
    droot->a = shared;
    droot->b = (struct dag *) malloc(sizeof(struct dag));
    droot->b->tag = 2;
    droot->b->a = shared;   /* second reference to the same node */
    droot->b->b = droot;    /* a cycle, for good measure         */

    migrate_here();

    checksum = tree_sum(troot);
    checksum += *pi + stack_cell;
    for (i = 0; i < 10; i++) checksum += parr[i];
    for (i = 0; i < 10; i++) checksum += *pptrs[i];
    checksum += dag_walk(droot, 0);
    printf("checksum=%d shared=%d cyc=%d\n",
           checksum, droot->b->a->tag, droot->b->b->tag);
    return 0;
}
"""


def linpack_source(n: int = 100) -> str:
    """Linpack-style dense solve of Ax = b for an n×n system.

    Matrices are local arrays of ``main`` (paper §4.2: "memory spaces for
    matrices are allocated as local variables at the beginning of the
    main() function and are referenced by other functions throughout
    program lifetime"), so the MSR has a *small, constant* number of
    nodes regardless of problem size.
    """
    return (
        r"""
#define N %N%

/* BLAS-1 kernels */
void daxpy(int n, double da, double *dx, double *dy) {
    int i;
    if (n <= 0) return;
    if (da == 0.0) return;
    for (i = 0; i < n; i++) dy[i] = dy[i] + da * dx[i];
}

int idamax(int n, double *dx) {
    double dmax;
    int i, itemp;
    if (n < 1) return -1;
    itemp = 0;
    dmax = fabs(dx[0]);
    for (i = 1; i < n; i++) {
        if (fabs(dx[i]) > dmax) {
            itemp = i;
            dmax = fabs(dx[i]);
        }
    }
    return itemp;
}

void dscal(int n, double da, double *dx) {
    int i;
    for (i = 0; i < n; i++) dx[i] = da * dx[i];
}

/* pseudo-random matrix generation (the netlib matgen shape) */
void matgen(double *a, int lda, int n, double *b) {
    int init, i, j;
    init = 1325;
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++) {
            init = 3125 * init % 65536;
            a[lda * j + i] = (init - 32768.0) / 16384.0;
        }
    }
    for (i = 0; i < n; i++) b[i] = 0.0;
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++) b[i] = b[i] + a[lda * j + i];
    }
}

/* LU factorization with partial pivoting */
int dgefa(double *a, int lda, int n, int *ipvt) {
    double t;
    int info, j, k, kp1, l, nm1;

    info = 0;
    nm1 = n - 1;
    for (k = 0; k < nm1; k++) {
        migrate_here();
        kp1 = k + 1;
        l = idamax(n - k, &a[lda * k + k]) + k;
        ipvt[k] = l;
        if (a[lda * k + l] == 0.0) { info = k; continue; }
        if (l != k) {
            t = a[lda * k + l];
            a[lda * k + l] = a[lda * k + k];
            a[lda * k + k] = t;
        }
        t = -1.0 / a[lda * k + k];
        dscal(n - kp1, t, &a[lda * k + k + 1]);
        for (j = kp1; j < n; j++) {
            t = a[lda * j + l];
            if (l != k) {
                a[lda * j + l] = a[lda * j + k];
                a[lda * j + k] = t;
            }
            daxpy(n - kp1, t, &a[lda * k + k + 1], &a[lda * j + k + 1]);
        }
    }
    ipvt[n - 1] = n - 1;
    if (a[lda * (n - 1) + n - 1] == 0.0) info = n - 1;
    return info;
}

/* back substitution */
void dgesl(double *a, int lda, int n, int *ipvt, double *b) {
    double t;
    int k, kb, l, nm1;

    nm1 = n - 1;
    for (k = 0; k < nm1; k++) {
        l = ipvt[k];
        t = b[l];
        if (l != k) { b[l] = b[k]; b[k] = t; }
        daxpy(n - k - 1, t, &a[lda * k + k + 1], &b[k + 1]);
    }
    for (kb = 0; kb < n; kb++) {
        k = n - kb - 1;
        b[k] = b[k] / a[lda * k + k];
        t = -b[k];
        daxpy(k, t, &a[lda * k], b);
    }
}

int main() {
    double a[N * N];
    double b[N];
    double x[N];
    int ipvt[N];
    int i, info;
    double residual, xmax;

    matgen(a, N, N, b);
    for (i = 0; i < N; i++) x[i] = b[i];

    info = dgefa(a, N, N, ipvt);
    dgesl(a, N, N, ipvt, x);

    /* regenerate and compute residual max|Ax - b| */
    matgen(a, N, N, b);
    residual = 0.0;
    xmax = 0.0;
    for (i = 0; i < N; i++) {
        int j;
        double r = -b[i];
        for (j = 0; j < N; j++) r = r + a[N * j + i] * x[j];
        if (fabs(r) > residual) residual = fabs(r);
        if (fabs(x[i]) > xmax) xmax = fabs(x[i]);
    }
    printf("info=%d residual=%.6e xmax=%.6f ok=%d\n",
           info, residual, xmax, residual < 1.0e-5);
    return 0;
}
""".replace("%N%", str(n))
    )


def bitonic_source(n: int = 1000, seed: int = 7) -> str:
    """The tree-sort program ("bitonic sort" in the paper's §4.1):
    insert *n* random integers into a binary tree via ``malloc``, then
    verify the in-order traversal is sorted.  Extensive small
    allocations and recursion — many small MSR nodes."""
    return (
        r"""
#define N %N%

struct tnode {
    int key;
    struct tnode *left;
    struct tnode *right;
};

struct tnode *root;
int sorted_ok;
int last_key;
int visited;

struct tnode *insert(struct tnode *t, int key) {
    if (t == NULL) {
        t = (struct tnode *) malloc(sizeof(struct tnode));
        t->key = key;
        t->left = NULL;
        t->right = NULL;
        return t;
    }
    if (key < t->key) t->left = insert(t->left, key);
    else t->right = insert(t->right, key);
    return t;
}

void traverse(struct tnode *t) {
    if (t == NULL) return;
    traverse(t->left);
    if (t->key < last_key) sorted_ok = 0;
    last_key = t->key;
    visited = visited + 1;
    traverse(t->right);
}

int main() {
    int i;
    srand(%SEED%);
    for (i = 0; i < N; i++) {
        root = insert(root, rand());
        migrate_here();
    }
    sorted_ok = 1;
    last_key = -1;
    visited = 0;
    traverse(root);
    printf("n=%d visited=%d sorted=%d last=%d\n", N, visited, sorted_ok, last_key);
    return 0;
}
""".replace("%N%", str(n)).replace("%SEED%", str(seed))
    )


def matmul_source(n: int = 32) -> str:
    """Extra workload: dense matrix multiply with heap matrices (used by
    examples and extended tests — mixed heap/stack MSR shapes)."""
    return (
        r"""
#define N %N%

double *alloc_matrix() {
    return (double *) malloc(N * N * sizeof(double));
}

void fill(double *m, int mode) {
    int i, j;
    for (i = 0; i < N; i++) {
        for (j = 0; j < N; j++) {
            if (mode == 0) m[i * N + j] = (i == j) ? 2.0 : 0.0;
            else m[i * N + j] = i + j * 0.5;
        }
    }
}

void multiply(double *c, double *a, double *b) {
    int i, j, k;
    for (i = 0; i < N; i++) {
        migrate_here();
        for (j = 0; j < N; j++) {
            double s = 0.0;
            for (k = 0; k < N; k++) s += a[i * N + k] * b[k * N + j];
            c[i * N + j] = s;
        }
    }
}

int main() {
    double *a; double *b; double *c;
    double trace;
    int i;
    a = alloc_matrix(); b = alloc_matrix(); c = alloc_matrix();
    fill(a, 0);
    fill(b, 1);
    multiply(c, a, b);
    trace = 0.0;
    for (i = 0; i < N; i++) trace += c[i * N + i];
    printf("trace=%.3f\n", trace);
    return 0;
}
""".replace("%N%", str(n))
    )


def nbody_source(n: int = 16, steps: int = 10) -> str:
    """Extra workload: naive O(n²) n-body integrator with an array of
    structs (struct-heavy blocks, doubles + no pointers)."""
    return (
        r"""
#define N %N%
#define STEPS %STEPS%

struct body {
    double x; double y;
    double vx; double vy;
    double mass;
};

struct body bodies[N];

void init_bodies() {
    int i;
    srand(99);
    for (i = 0; i < N; i++) {
        bodies[i].x = (rand() % 1000) * 0.01;
        bodies[i].y = (rand() % 1000) * 0.01;
        bodies[i].vx = 0.0;
        bodies[i].vy = 0.0;
        bodies[i].mass = 1.0 + (rand() % 10) * 0.1;
    }
}

void step(double dt) {
    int i, j;
    for (i = 0; i < N; i++) {
        double ax = 0.0;
        double ay = 0.0;
        for (j = 0; j < N; j++) {
            double dx, dy, d2, inv;
            if (j == i) continue;
            dx = bodies[j].x - bodies[i].x;
            dy = bodies[j].y - bodies[i].y;
            d2 = dx * dx + dy * dy + 0.01;
            inv = bodies[j].mass / (d2 * sqrt(d2));
            ax += dx * inv;
            ay += dy * inv;
        }
        bodies[i].vx += ax * dt;
        bodies[i].vy += ay * dt;
    }
    for (i = 0; i < N; i++) {
        bodies[i].x += bodies[i].vx * dt;
        bodies[i].y += bodies[i].vy * dt;
    }
}

int main() {
    int s, i;
    double energy;
    init_bodies();
    for (s = 0; s < STEPS; s++) {
        migrate_here();
        step(0.01);
    }
    energy = 0.0;
    for (i = 0; i < N; i++) {
        energy += 0.5 * bodies[i].mass *
                  (bodies[i].vx * bodies[i].vx + bodies[i].vy * bodies[i].vy);
    }
    printf("kinetic=%.6f\n", energy);
    return 0;
}
""".replace("%N%", str(n)).replace("%STEPS%", str(steps))
    )


def hashtable_source(n_ops: int = 500, n_buckets: int = 32, seed: int = 11) -> str:
    """Extra workload: separate-chaining hash table under churn.

    The richest MSR shape in the suite: a global array of bucket head
    pointers fanning out into linked chains that grow and shrink
    (insert/delete churn exercises malloc/free + MSRLT unregistration),
    plus an embedded-struct accumulator copied by value.  Also uses
    ``enum`` for the operation mix.
    """
    return (
        r"""
#define NOPS %NOPS%
#define NBUCKETS %NBUCKETS%

enum op_kind { OP_INSERT, OP_LOOKUP, OP_DELETE };

struct entry {
    int key;
    int value;
    struct entry *next;
};

struct stats {
    int inserts;
    int hits;
    int misses;
    int deletes;
};

struct entry *buckets[NBUCKETS];
struct stats totals;

int bucket_of(int key) {
    int h = key % NBUCKETS;
    if (h < 0) h += NBUCKETS;
    return h;
}

void ht_insert(int key, int value) {
    int b = bucket_of(key);
    struct entry *e = (struct entry *) malloc(sizeof(struct entry));
    e->key = key;
    e->value = value;
    e->next = buckets[b];
    buckets[b] = e;
}

struct entry *ht_lookup(int key) {
    struct entry *p = buckets[bucket_of(key)];
    while (p != NULL) {
        if (p->key == key) return p;
        p = p->next;
    }
    return NULL;
}

int ht_delete(int key) {
    int b = bucket_of(key);
    struct entry *p = buckets[b];
    struct entry *prev = NULL;
    while (p != NULL) {
        if (p->key == key) {
            if (prev == NULL) buckets[b] = p->next;
            else prev->next = p->next;
            free(p);
            return 1;
        }
        prev = p;
        p = p->next;
    }
    return 0;
}

int main() {
    int i;
    struct stats snapshot;
    srand(%SEED%);
    totals.inserts = 0; totals.hits = 0; totals.misses = 0; totals.deletes = 0;
    for (i = 0; i < NOPS; i++) {
        int key = rand() % (NOPS / 2 + 1);
        int kind = rand() % 3;
        migrate_here();
        switch (kind) {
        case OP_INSERT:
            ht_insert(key, i);
            totals.inserts++;
            break;
        case OP_LOOKUP:
            if (ht_lookup(key) != NULL) totals.hits++;
            else totals.misses++;
            break;
        case OP_DELETE:
            totals.deletes += ht_delete(key);
            break;
        }
    }
    snapshot = totals;   /* struct assignment by value */
    {
        int live = 0;
        long checksum = 0;
        for (i = 0; i < NBUCKETS; i++) {
            struct entry *p = buckets[i];
            while (p != NULL) {
                live++;
                checksum = checksum * 31 + p->key + p->value;
                p = p->next;
            }
        }
        printf("ins=%d hit=%d miss=%d del=%d live=%d sum=%d\n",
               snapshot.inserts, snapshot.hits, snapshot.misses,
               snapshot.deletes, live, (int) checksum);
    }
    return 0;
}
""".replace("%NOPS%", str(n_ops))
        .replace("%NBUCKETS%", str(n_buckets))
        .replace("%SEED%", str(seed))
    )


def structgrid_source(n_cells: int = 256, n_probes: int = 64, seed: int = 7) -> str:
    """Extra workload: a struct grid probed through pointer nodes.

    Built for the codec benchmarks (E5/PR 3): one large global array of
    *mixed-kind, pointer-free* structs — too heterogeneous for the FLAT
    fast path, ideal for the compiled vectorized codec — plus a chain of
    pointer-bearing probe nodes, plus a global array of pointers whose
    targets all land inside the grid, so the consecutive pointer lookups
    of its collection hit the MSRLT last-hit cache.
    """
    return (
        r"""
#define CELLS %CELLS%
#define PROBES %PROBES%

struct cell {
    double value;
    int row;
    int col;
    double weight;
};

struct probe {
    struct cell *target;
    int strength;
    struct probe *next;
};

struct cell grid[CELLS];
struct probe *chain;
struct cell *hot[PROBES];

void init_grid() {
    int i;
    for (i = 0; i < CELLS; i++) {
        grid[i].value = i * 0.5;
        grid[i].row = i / 16;
        grid[i].col = i % 16;
        grid[i].weight = 1.0 / (i + 1);
    }
}

int main() {
    int i, live;
    double acc;
    struct probe *p;
    init_grid();
    chain = NULL;
    srand(%SEED%);
    for (i = 0; i < PROBES; i++) {
        p = (struct probe *) malloc(sizeof(struct probe));
        p->target = &grid[rand() % CELLS];
        p->strength = rand() % 100;
        p->next = chain;
        chain = p;
        hot[i] = &grid[(i * 7) % CELLS];
        migrate_here();
    }
    acc = 0.0;
    live = 0;
    for (p = chain; p != NULL; p = p->next) {
        acc = acc + p->target->value * p->target->weight + p->strength;
        live = live + 1;
    }
    for (i = 0; i < PROBES; i++) {
        if (hot[i] != NULL) acc = acc + hot[i]->value;
    }
    printf("probes=%d acc=%.6f\n", live, acc);
    return 0;
}
""".replace("%CELLS%", str(n_cells))
        .replace("%PROBES%", str(n_probes))
        .replace("%SEED%", str(seed))
    )
