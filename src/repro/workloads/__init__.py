"""The paper's evaluation workloads, written in the migration-safe C subset.

- :func:`test_pointer_source` — the synthetic pointer-structure program
  (§4.1): tree, pointer to int, pointer to an array of 10 ints, pointer
  to an array of 10 pointers to int, and a DAG with shared nodes;
- :func:`linpack_source` — the linpack benchmark (solve Ax = b with LU
  factorization and partial pivoting): few MSR nodes, each very large;
- :func:`bitonic_source` — the bitonic/tree sort: a binary tree of random
  integers, sorted on in-order traversal; very many small heap blocks.
"""

from repro.workloads.programs import (
    bitonic_source,
    hashtable_source,
    linpack_source,
    test_pointer_source,
    matmul_source,
    nbody_source,
    structgrid_source,
)

__all__ = [
    "bitonic_source",
    "hashtable_source",
    "linpack_source",
    "test_pointer_source",
    "matmul_source",
    "nbody_source",
    "structgrid_source",
]
