"""The builtin C library available to workload programs.

A deliberately small libc subset: memory management (``malloc`` is
*typed* — the pre-compiler recognizes the idiomatic ``(T*)malloc(...)``
cast and passes the element type, which the MSRLT uses to register the
new heap block), stdio (``printf`` with the common conversions), strings,
math, and a deterministic PRNG.

The PRNG state lives in a **hidden global variable** (``__rand_state``)
inside the simulated process, not in Python: it therefore migrates with
the rest of the memory state, and a migrated process continues the same
random sequence on the destination host — one of the subtle correctness
properties the paper's bitonic experiment depends on.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.clang.ctypes import (
    CHAR,
    CType,
    DOUBLE,
    INT,
    PointerType,
    UINT,
    ULONG,
    VOID,
)
from repro.vm.typecheck import BuiltinSig

__all__ = [
    "Builtin",
    "BUILTINS",
    "BUILTIN_SIGS",
    "BUILTIN_INDEX",
    "RAND_STATE_GLOBAL",
    "read_c_string",
]

#: name of the hidden global carrying the PRNG state
RAND_STATE_GLOBAL = "__rand_state"

VOIDP = PointerType(VOID)
CHARP = PointerType(CHAR)


@dataclass(frozen=True)
class Builtin:
    """One builtin: signature + python implementation.

    Handlers receive ``(process, args, extra)`` where *extra* is the
    compile-time annotation (the element type id for typed allocation).
    """

    sig: BuiltinSig
    handler: Callable


def _b(name: str, ret: CType, params: tuple[CType, ...], variadic: bool = False):
    def wrap(fn: Callable) -> Callable:
        _REGISTRY.append(Builtin(BuiltinSig(name, ret, params, variadic), fn))
        return fn

    return wrap


_REGISTRY: list[Builtin] = []


# -- memory management ---------------------------------------------------------


@_b("malloc", VOIDP, (ULONG,))
def _malloc(proc, args, extra):
    nbytes = int(args[0])
    return proc.typed_malloc(nbytes, extra)


@_b("calloc", VOIDP, (ULONG, ULONG))
def _calloc(proc, args, extra):
    nbytes = int(args[0]) * int(args[1])
    addr = proc.typed_malloc(nbytes, extra)
    if addr:
        proc.memory.zero(addr, max(nbytes, 1))
    return addr


@_b("realloc", VOIDP, (VOIDP, ULONG))
def _realloc(proc, args, extra):
    return proc.typed_realloc(int(args[0]), int(args[1]), extra)


@_b("free", VOID, (VOIDP,))
def _free(proc, args, extra):
    proc.typed_free(int(args[0]))
    return None


@_b("memset", VOIDP, (VOIDP, INT, ULONG))
def _memset(proc, args, extra):
    addr, byte, n = int(args[0]), int(args[1]) & 0xFF, int(args[2])
    proc.memory.write_bytes(addr, bytes([byte]) * n)
    return addr


@_b("memcpy", VOIDP, (VOIDP, VOIDP, ULONG))
def _memcpy(proc, args, extra):
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    proc.memory.write_bytes(dst, proc.memory.read_bytes(src, n))
    return dst


# -- strings ----------------------------------------------------------------------


def read_c_string(memory, addr: int, limit: int = 1 << 20) -> str:
    """Read a NUL-terminated C string from simulated *memory*."""
    out = bytearray()
    while len(out) < limit:
        byte = memory.load("uchar", addr + len(out))
        if byte == 0:
            break
        out.append(byte)
    return out.decode("utf-8", errors="replace")


@_b("strlen", ULONG, (CHARP,))
def _strlen(proc, args, extra):
    return len(read_c_string(proc.memory, int(args[0])).encode("utf-8"))


@_b("strcpy", CHARP, (CHARP, CHARP))
def _strcpy(proc, args, extra):
    dst, src = int(args[0]), int(args[1])
    data = read_c_string(proc.memory, src).encode("utf-8") + b"\0"
    proc.memory.write_bytes(dst, data)
    return dst


@_b("strcmp", INT, (CHARP, CHARP))
def _strcmp(proc, args, extra):
    a = read_c_string(proc.memory, int(args[0]))
    b = read_c_string(proc.memory, int(args[1]))
    return (a > b) - (a < b)


# -- stdio ------------------------------------------------------------------------

_FMT_RE = re.compile(r"%([-+ 0#]*)(\d*)(?:\.(\d+))?(hh|h|ll|l)?([diufFeEgGxXcsp%])")


def _format_printf(proc, fmt: str, args: list) -> str:
    out: list[str] = []
    pos = 0
    argi = 0
    for m in _FMT_RE.finditer(fmt):
        out.append(fmt[pos : m.start()])
        pos = m.end()
        flags, width, prec, _len, conv = m.groups()
        if conv == "%":
            out.append("%")
            continue
        arg = args[argi]
        argi += 1
        spec = "%" + (flags or "") + (width or "") + (("." + prec) if prec else "")
        if conv in "di":
            out.append((spec + "d") % int(arg))
        elif conv == "u":
            out.append((spec + "d") % (int(arg) & 0xFFFFFFFFFFFFFFFF if int(arg) < 0 else int(arg)))
        elif conv in "fF":
            out.append((spec + "f") % float(arg))
        elif conv in "eEgG":
            out.append((spec + conv) % float(arg))
        elif conv in "xX":
            out.append((spec + conv) % (int(arg) & 0xFFFFFFFFFFFFFFFF))
        elif conv == "c":
            out.append(chr(int(arg) & 0xFF))
        elif conv == "s":
            out.append((spec + "s") % read_c_string(proc.memory, int(arg)))
        elif conv == "p":
            out.append(hex(int(arg)))
    out.append(fmt[pos:])
    return "".join(out)


@_b("printf", INT, (CHARP,), variadic=True)
def _printf(proc, args, extra):
    fmt = read_c_string(proc.memory, int(args[0]))
    text = _format_printf(proc, fmt, list(args[1:]))
    proc.write_stdout(text)
    return len(text)


@_b("puts", INT, (CHARP,))
def _puts(proc, args, extra):
    text = read_c_string(proc.memory, int(args[0]))
    proc.write_stdout(text + "\n")
    return len(text) + 1


@_b("putchar", INT, (INT,))
def _putchar(proc, args, extra):
    proc.write_stdout(chr(int(args[0]) & 0xFF))
    return int(args[0])


# -- process control ------------------------------------------------------------------


@_b("exit", VOID, (INT,))
def _exit(proc, args, extra):
    from repro.vm.process import ProcessExit

    raise ProcessExit(int(args[0]))


@_b("abort", VOID, ())
def _abort(proc, args, extra):
    from repro.vm.process import ProcessExit

    raise ProcessExit(134)  # 128 + SIGABRT


# -- PRNG (state in simulated memory — it migrates!) -----------------------------------


@_b("srand", VOID, (UINT,))
def _srand(proc, args, extra):
    proc.set_rand_state(int(args[0]) & 0xFFFFFFFF)
    return None


@_b("rand", INT, ())
def _rand(proc, args, extra):
    state = proc.get_rand_state()
    state = (1103515245 * state + 12345) & 0x7FFFFFFF
    proc.set_rand_state(state)
    return state


# -- math -------------------------------------------------------------------------------


@_b("abs", INT, (INT,))
def _abs(proc, args, extra):
    v = int(args[0])
    return -v if v < 0 else v


@_b("fabs", DOUBLE, (DOUBLE,))
def _fabs(proc, args, extra):
    return abs(float(args[0]))


@_b("sqrt", DOUBLE, (DOUBLE,))
def _sqrt(proc, args, extra):
    return math.sqrt(float(args[0]))


@_b("pow", DOUBLE, (DOUBLE, DOUBLE))
def _pow(proc, args, extra):
    return math.pow(float(args[0]), float(args[1]))


@_b("exp", DOUBLE, (DOUBLE,))
def _exp(proc, args, extra):
    return math.exp(float(args[0]))


@_b("log", DOUBLE, (DOUBLE,))
def _log(proc, args, extra):
    return math.log(float(args[0]))


@_b("sin", DOUBLE, (DOUBLE,))
def _sin(proc, args, extra):
    return math.sin(float(args[0]))


@_b("cos", DOUBLE, (DOUBLE,))
def _cos(proc, args, extra):
    return math.cos(float(args[0]))


@_b("floor", DOUBLE, (DOUBLE,))
def _floor(proc, args, extra):
    return math.floor(float(args[0]))


@_b("ceil", DOUBLE, (DOUBLE,))
def _ceil(proc, args, extra):
    return math.ceil(float(args[0]))


@_b("fmod", DOUBLE, (DOUBLE, DOUBLE))
def _fmod(proc, args, extra):
    return math.fmod(float(args[0]), float(args[1]))


# -- registry views ------------------------------------------------------------------------

#: builtins in registration order (indices are the CALLB operands)
BUILTINS: tuple[Builtin, ...] = tuple(_REGISTRY)
#: name -> signature (fed to the type checker)
BUILTIN_SIGS: dict[str, BuiltinSig] = {b.sig.name: b.sig for b in BUILTINS}
#: name -> index
BUILTIN_INDEX: dict[str, int] = {b.sig.name: i for i, b in enumerate(BUILTINS)}
