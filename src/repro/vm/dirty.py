"""Write-barrier dirty tracking for iterative pre-copy migration.

The tracker is a pure interval log: every mutating :class:`~repro.vm.memory.Memory`
entry point calls :meth:`DirtyTracker.mark` with the written byte range, and
the migration layer periodically drains the log with :meth:`take` and resolves
the merged intervals to MSRLT blocks (``MSRLT.blocks_overlapping``).  Keeping
the tracker block-agnostic means the barrier costs one attribute check plus an
``append`` on the hot store path and never touches the MSRLT — blocks may be
registered, freed, or re-registered between marks without invalidating the log.

Stack writes are filtered out at mark time via the ``(skip_lo, skip_hi)``
range: pre-copy delta rounds never ship stack blocks (the stack travels only
in the final stop-and-copy stream, after the source has genuinely paused), so
tracking the interpreter's per-instruction stack traffic would only bloat the
log.
"""

from __future__ import annotations

__all__ = ["DirtyTracker"]

#: coalesce the interval log once it grows past this many entries
_COALESCE_THRESHOLD = 4096


class DirtyTracker:
    """Accumulates written byte intervals ``[lo, hi)`` between drains."""

    __slots__ = ("_intervals", "_skip_lo", "_skip_hi")

    def __init__(self, skip_lo: int = 0, skip_hi: int = 0) -> None:
        self._intervals: list[tuple[int, int]] = []
        self._skip_lo = skip_lo
        self._skip_hi = skip_hi

    def mark(self, addr: int, n: int) -> None:
        """Record a write of *n* bytes at *addr* (no-op for stack range)."""
        if n <= 0 or self._skip_lo <= addr < self._skip_hi:
            return
        self._intervals.append((addr, addr + n))
        if len(self._intervals) > _COALESCE_THRESHOLD:
            self._intervals = _merge(self._intervals)

    def take(self) -> list[tuple[int, int]]:
        """Drain the log: return merged, sorted intervals and clear."""
        merged = _merge(self._intervals)
        self._intervals = []
        return merged

    def __bool__(self) -> bool:
        return bool(self._intervals)


def _merge(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    if len(intervals) <= 1:
        return list(intervals)
    intervals = sorted(intervals)
    out = [intervals[0]]
    for lo, hi in intervals[1:]:
        plo, phi = out[-1]
        if lo <= phi:
            if hi > phi:
                out[-1] = (plo, hi)
        else:
            out.append((lo, hi))
    return out
