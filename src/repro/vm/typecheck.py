"""Type checker: annotates every expression with its C type.

Runs on the parsed AST before normalization.  Responsibilities:

- resolve identifiers through block scoping;
- apply C's usual arithmetic conversions, materializing every implicit
  numeric conversion as an (implicit) :class:`~repro.clang.cast.Cast`
  node so that IR generation is purely local;
- decay arrays to pointers in rvalue contexts;
- type pointer arithmetic and member access;
- check calls against user function definitions and the builtin
  library's signatures.

Any violation raises :class:`TypeCheckError` with a source line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.clang import cast as A
from repro.clang.ctypes import (
    ArrayType,
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    INT,
    PointerType,
    PrimType,
    StructType,
    UINT,
    ULONG,
    VOID,
    VoidType,
    type_key,
)

__all__ = ["TypeCheckError", "BuiltinSig", "TypeChecker", "arith_result", "is_null_ptr"]


class TypeCheckError(Exception):
    """A C typing violation."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class BuiltinSig:
    """Type signature of one builtin library function.

    ``params`` lists fixed parameter types; ``variadic`` allows extra
    arguments (which receive C's default argument promotions).
    """

    name: str
    ret: CType
    params: tuple[CType, ...]
    variadic: bool = False


# integer conversion rank (C11 6.3.1.1), floats above all integers
_RANK = {
    "char": 1,
    "uchar": 1,
    "short": 2,
    "ushort": 2,
    "int": 3,
    "uint": 3,
    "long": 4,
    "ulong": 4,
    "llong": 5,
    "ullong": 5,
    "float": 6,
    "double": 7,
}

_UNSIGNED_OF = {"char": "uchar", "short": "ushort", "int": "uint", "long": "ulong", "llong": "ullong"}


def _promote(kind: str) -> str:
    """Integer promotion: sub-int kinds become int."""
    if _RANK[kind] < _RANK["int"]:
        return "int"
    return kind


def arith_result(lk: str, rk: str) -> str:
    """Usual arithmetic conversions: result kind of ``lk (op) rk``."""
    if lk == "double" or rk == "double":
        return "double"
    if lk == "float" or rk == "float":
        return "float"
    lk, rk = _promote(lk), _promote(rk)
    if lk == rk:
        return lk
    hi, lo = (lk, rk) if _RANK[lk] >= _RANK[rk] else (rk, lk)
    if _RANK[hi] > _RANK[lo]:
        # higher rank wins; unsignedness of the lower-ranked operand is
        # absorbed (we model the common ILP32/LP64 cases)
        if hi in _UNSIGNED_OF.values() or lo not in _UNSIGNED_OF.values():
            return hi
        return hi
    # same rank, one unsigned -> unsigned wins
    return hi if hi in _UNSIGNED_OF.values() else _UNSIGNED_OF.get(hi, hi)


def is_null_ptr(expr: A.Expr) -> bool:
    """Whether *expr* is a null pointer constant."""
    return isinstance(expr, A.Null) or (isinstance(expr, A.IntLit) and expr.value == 0)


def _pointer_compatible(dst: PointerType, src: CType) -> bool:
    if not isinstance(src, PointerType):
        return False
    if isinstance(dst.target, VoidType) or isinstance(src.target, VoidType):
        return True
    return type_key(dst.target) == type_key(src.target)


class _Scope:
    """One lexical scope level."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.vars: dict[str, CType] = {}
        self.parent = parent

    def lookup(self, name: str) -> Optional[CType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            ctype = scope.vars.get(name)
            if ctype is not None:
                return ctype
            scope = scope.parent
        return None


class TypeChecker:
    """Annotates a translation unit in place."""

    def __init__(self, unit: A.TranslationUnit, builtins: dict[str, BuiltinSig]) -> None:
        self.unit = unit
        self.builtins = builtins
        self.functions: dict[str, A.FuncDef] = {f.name: f for f in unit.functions}
        self.globals_scope = _Scope()
        self._current_ret: CType = VOID

    # -- public ----------------------------------------------------------------

    def check(self) -> None:
        """Type-check the whole unit, annotating ``ctype`` on expressions."""
        for gvar in self.unit.globals:
            if gvar.name in self.globals_scope.vars:
                raise TypeCheckError(f"redefinition of global {gvar.name!r}", gvar.line)
            if gvar.name in self.functions or gvar.name in self.builtins:
                raise TypeCheckError(
                    f"global {gvar.name!r} collides with a function name", gvar.line
                )
            self.globals_scope.vars[gvar.name] = gvar.ctype
            if gvar.init is not None:
                self._check_global_init(gvar)
            if gvar.init_list is not None:
                self._check_global_init_list(gvar)
        for func in self.unit.functions:
            self._check_function(func)

    # -- globals ------------------------------------------------------------------

    def _check_global_init(self, gvar: A.GlobalVar) -> None:
        ctype = self.rvalue(gvar.init)
        gvar.init = self._convert(gvar.init, gvar.ctype, gvar.line)
        if _const_value(gvar.init) is None:
            raise TypeCheckError(
                f"global initializer of {gvar.name!r} must be constant", gvar.line
            )
        del ctype

    def _check_global_init_list(self, gvar: A.GlobalVar) -> None:
        if not isinstance(gvar.ctype, ArrayType):
            raise TypeCheckError("brace initializer on non-array global", gvar.line)
        elem = gvar.ctype.elem
        if len(gvar.init_list) > gvar.ctype.length:
            raise TypeCheckError("too many initializers", gvar.line)
        new_items = []
        for item in gvar.init_list:
            self.rvalue(item)
            item = self._convert(item, elem, gvar.line)
            if _const_value(item) is None:
                raise TypeCheckError("global initializers must be constant", gvar.line)
            new_items.append(item)
        gvar.init_list[:] = new_items

    # -- functions ------------------------------------------------------------------

    def _check_function(self, func: A.FuncDef) -> None:
        scope = _Scope(self.globals_scope)
        for p in func.params:
            if p.name in scope.vars:
                raise TypeCheckError(f"duplicate parameter {p.name!r}", func.line)
            scope.vars[p.name] = p.ctype
        self._current_ret = func.ret
        self._check_block(func.body, scope)

    def _check_block(self, block: A.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope) -> None:
        self._scope = scope
        if isinstance(stmt, A.ExprStmt):
            self.rvalue(stmt.expr)
        elif isinstance(stmt, A.DeclStmt):
            for decl in stmt.decls:
                if decl.name in scope.vars:
                    raise TypeCheckError(f"redefinition of {decl.name!r}", decl.line)
                scope.vars[decl.name] = decl.ctype
                if decl.init is not None:
                    if isinstance(decl.ctype, StructType):
                        # struct initialization = struct assignment by value
                        vt = self._expr(decl.init)
                        if not (
                            isinstance(vt, StructType)
                            and type_key(vt) == type_key(decl.ctype)
                        ):
                            raise TypeCheckError(
                                f"cannot initialize {decl.ctype} from {vt}", decl.line
                            )
                    else:
                        self.rvalue(decl.init)
                        decl.init = self._convert(decl.init, decl.ctype, decl.line)
                if decl.init_list is not None:
                    if not isinstance(decl.ctype, ArrayType):
                        raise TypeCheckError("brace initializer on non-array", decl.line)
                    if len(decl.init_list) > decl.ctype.length:
                        raise TypeCheckError("too many initializers", decl.line)
                    decl.init_list[:] = [
                        self._convert(self._rv(item), decl.ctype.elem, decl.line)
                        for item in decl.init_list
                    ]
        elif isinstance(stmt, A.If):
            self._check_cond(stmt.cond)
            self._check_stmt(stmt.then, _Scope(scope))
            if stmt.other is not None:
                self._check_stmt(stmt.other, _Scope(scope))
        elif isinstance(stmt, A.While):
            self._check_cond(stmt.cond)
            self._check_stmt(stmt.body, _Scope(scope))
        elif isinstance(stmt, A.DoWhile):
            self._check_stmt(stmt.body, _Scope(scope))
            self._scope = scope
            self._check_cond(stmt.cond)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                self.rvalue(stmt.init)
            if stmt.cond is not None:
                self._check_cond(stmt.cond)
            if stmt.step is not None:
                self.rvalue(stmt.step)
            self._check_stmt(stmt.body, _Scope(scope))
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                if isinstance(self._current_ret, VoidType):
                    raise TypeCheckError("return with value in void function", stmt.line)
                self.rvalue(stmt.value)
                stmt.value = self._convert(stmt.value, self._current_ret, stmt.line)
            elif not isinstance(self._current_ret, VoidType):
                raise TypeCheckError("return without value in non-void function", stmt.line)
        elif isinstance(stmt, A.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, A.Switch):
            ctype = self.rvalue(stmt.cond)
            if not (isinstance(ctype, PrimType) and ctype.is_integer):
                raise TypeCheckError("switch condition must be an integer", stmt.line)
            for case in stmt.cases:
                for s in case.body:
                    self._check_stmt(s, _Scope(scope))
        elif isinstance(stmt, (A.Break, A.Continue, A.PollHint)):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _check_cond(self, expr: A.Expr) -> None:
        ctype = self.rvalue(expr)
        if not (ctype.is_scalar or isinstance(ctype, PointerType)):
            raise TypeCheckError(f"condition has non-scalar type {ctype}", expr.line)

    # -- expressions -------------------------------------------------------------------

    def _rv(self, expr: A.Expr) -> A.Expr:
        self.rvalue(expr)
        return expr

    def rvalue(self, expr: A.Expr) -> CType:
        """Type of *expr* as a value (arrays decay); annotates ``expr.ctype``."""
        ctype = self._expr(expr)
        if isinstance(ctype, ArrayType):
            ctype = PointerType(ctype.elem)
            expr.ctype = ctype
        return ctype

    def lvalue(self, expr: A.Expr) -> CType:
        """Type of *expr* as an object (no decay); must be addressable."""
        if isinstance(expr, A.Ident):
            return self._expr(expr)
        if isinstance(expr, A.Unary) and expr.op == "*":
            return self._expr(expr)
        if isinstance(expr, (A.Index, A.Member)):
            return self._expr(expr)
        raise TypeCheckError(f"expression is not an lvalue", expr.line)

    def _expr(self, expr: A.Expr) -> CType:
        ctype = self._expr_inner(expr)
        expr.ctype = ctype
        return ctype

    def _expr_inner(self, expr: A.Expr) -> CType:
        scope = getattr(self, "_scope", self.globals_scope)

        if isinstance(expr, A.IntLit):
            if expr.unsigned and expr.long:
                return ULONG
            if expr.unsigned:
                return UINT
            if expr.long:
                return PrimType("long")
            if expr.value > 2**31 - 1:
                return PrimType("long") if expr.value <= 2**63 - 1 else PrimType("ullong")
            return INT
        if isinstance(expr, A.FloatLit):
            return FLOAT if expr.single else DOUBLE
        if isinstance(expr, A.CharLit):
            return INT
        if isinstance(expr, A.StringLit):
            return ArrayType(CHAR, max(len(expr.value.encode("utf-8")) + 1, 1))
        if isinstance(expr, A.Null):
            return PointerType(VOID)

        if isinstance(expr, A.Ident):
            ctype = scope.lookup(expr.name)
            if ctype is None:
                raise TypeCheckError(f"undeclared identifier {expr.name!r}", expr.line)
            return ctype

        if isinstance(expr, A.Unary):
            return self._unary(expr)
        if isinstance(expr, A.Binary):
            return self._binary(expr)
        if isinstance(expr, A.Assign):
            return self._assign(expr)
        if isinstance(expr, A.Call):
            return self._call(expr)

        if isinstance(expr, A.Index):
            base = self.rvalue(expr.base)
            if not isinstance(base, PointerType):
                raise TypeCheckError(f"subscript of non-pointer type {base}", expr.line)
            idx = self.rvalue(expr.index)
            if not (isinstance(idx, PrimType) and idx.is_integer):
                raise TypeCheckError("array subscript must be an integer", expr.line)
            return base.target

        if isinstance(expr, A.Member):
            if expr.arrow:
                base = self.rvalue(expr.base)
                if not (isinstance(base, PointerType) and isinstance(base.target, StructType)):
                    raise TypeCheckError(f"-> on non-struct-pointer type {base}", expr.line)
                stype = base.target
            else:
                base = self._expr(expr.base)
                if not isinstance(base, StructType):
                    raise TypeCheckError(f". on non-struct type {base}", expr.line)
                stype = base
            try:
                return stype.field_type(expr.name)
            except KeyError as exc:
                raise TypeCheckError(str(exc), expr.line) from None

        if isinstance(expr, A.Cast):
            self.rvalue(expr.operand)
            return expr.to

        if isinstance(expr, A.SizeofType):
            return ULONG
        if isinstance(expr, A.SizeofExpr):
            # typed for its side effects only; value resolved per arch
            self._expr(expr.operand)
            return ULONG

        if isinstance(expr, A.Cond):
            self._check_cond(expr.cond)
            lt = self.rvalue(expr.then)
            rt = self.rvalue(expr.other)
            if isinstance(lt, PointerType) or isinstance(rt, PointerType):
                if is_null_ptr(expr.then):
                    return rt
                if is_null_ptr(expr.other):
                    return lt
                if isinstance(lt, PointerType) and isinstance(rt, PointerType):
                    return lt
                raise TypeCheckError("mismatched ?: branches", expr.line)
            rk = arith_result(lt.kind, rt.kind)
            expr.then = self._convert(expr.then, PrimType(rk), expr.line)
            expr.other = self._convert(expr.other, PrimType(rk), expr.line)
            return PrimType(rk)

        raise TypeCheckError(f"unknown expression {type(expr).__name__}", expr.line)

    def _unary(self, expr: A.Unary) -> CType:
        op = expr.op
        if op == "&":
            ctype = self.lvalue(expr.operand)
            return PointerType(ctype)
        if op == "*":
            ctype = self.rvalue(expr.operand)
            if not isinstance(ctype, PointerType) or isinstance(ctype.target, VoidType):
                raise TypeCheckError(f"cannot dereference type {ctype}", expr.line)
            return ctype.target
        if op in ("++", "--", "p++", "p--"):
            ctype = self.lvalue(expr.operand)
            if isinstance(ctype, PointerType):
                return ctype
            if isinstance(ctype, PrimType):
                return ctype
            raise TypeCheckError(f"cannot increment type {ctype}", expr.line)
        if op == "!":
            self._check_cond(expr.operand)
            return INT
        if op in ("-", "~"):
            ctype = self.rvalue(expr.operand)
            if not isinstance(ctype, PrimType):
                raise TypeCheckError(f"bad operand type {ctype} for unary {op}", expr.line)
            if op == "~" and not ctype.is_integer:
                raise TypeCheckError("~ requires an integer operand", expr.line)
            kind = _promote(ctype.kind) if ctype.is_integer else ctype.kind
            expr.operand = self._convert(expr.operand, PrimType(kind), expr.line)
            return PrimType(kind)
        raise TypeCheckError(f"unknown unary operator {op!r}", expr.line)

    def _binary(self, expr: A.Binary) -> CType:
        op = expr.op
        if op in ("&&", "||"):
            self._check_cond(expr.left)
            self._check_cond(expr.right)
            return INT
        if op == ",":
            self.rvalue(expr.left)
            return self.rvalue(expr.right)

        lt = self.rvalue(expr.left)
        rt = self.rvalue(expr.right)

        if op in ("==", "!=", "<", "<=", ">", ">="):
            if isinstance(lt, PointerType) or isinstance(rt, PointerType):
                if not (
                    (isinstance(lt, PointerType) and isinstance(rt, PointerType))
                    or is_null_ptr(expr.left)
                    or is_null_ptr(expr.right)
                ):
                    raise TypeCheckError("comparison of pointer and non-pointer", expr.line)
                return INT
            rk = arith_result(lt.kind, rt.kind)
            expr.left = self._convert(expr.left, PrimType(rk), expr.line)
            expr.right = self._convert(expr.right, PrimType(rk), expr.line)
            return INT

        # pointer arithmetic
        if isinstance(lt, PointerType) or isinstance(rt, PointerType):
            if op == "+":
                if isinstance(lt, PointerType) and isinstance(rt, PrimType) and rt.is_integer:
                    return lt
                if isinstance(rt, PointerType) and isinstance(lt, PrimType) and lt.is_integer:
                    return rt
            if op == "-":
                if isinstance(lt, PointerType) and isinstance(rt, PointerType):
                    if type_key(lt.target) != type_key(rt.target):
                        raise TypeCheckError("subtraction of incompatible pointers", expr.line)
                    return PrimType("long")
                if isinstance(lt, PointerType) and isinstance(rt, PrimType) and rt.is_integer:
                    return lt
            raise TypeCheckError(f"invalid pointer operation {lt} {op} {rt}", expr.line)

        if not (isinstance(lt, PrimType) and isinstance(rt, PrimType)):
            raise TypeCheckError(f"bad operand types {lt} {op} {rt}", expr.line)

        if op in ("%", "&", "|", "^", "<<", ">>") and not (lt.is_integer and rt.is_integer):
            raise TypeCheckError(f"{op} requires integer operands", expr.line)

        if op in ("<<", ">>"):
            kind = _promote(lt.kind)
            expr.left = self._convert(expr.left, PrimType(kind), expr.line)
            expr.right = self._convert(expr.right, INT, expr.line)
            return PrimType(kind)

        rk = arith_result(lt.kind, rt.kind)
        expr.left = self._convert(expr.left, PrimType(rk), expr.line)
        expr.right = self._convert(expr.right, PrimType(rk), expr.line)
        return PrimType(rk)

    def _assign(self, expr: A.Assign) -> CType:
        target_t = self.lvalue(expr.target)
        if isinstance(target_t, ArrayType):
            raise TypeCheckError("cannot assign to an array", expr.line)
        if isinstance(target_t, StructType):
            if expr.op:
                raise TypeCheckError("compound assignment on a struct", expr.line)
            vt = self._expr(expr.value)
            if not (isinstance(vt, StructType) and type_key(vt) == type_key(target_t)):
                raise TypeCheckError(
                    f"cannot assign {vt} to {target_t}", expr.line
                )
            return target_t
        if expr.op:
            # compound: type as target = target op value (desugared later)
            synth = A.Binary(op=expr.op, left=expr.target, right=expr.value, line=expr.line)
            self._binary(synth)
            expr.value = synth.right  # pick up inserted conversions
            # final conversion back to the target type happens below
            vt = synth.ctype if synth.ctype is not None else self.rvalue(expr.value)
            del vt
        else:
            self.rvalue(expr.value)
        expr.value = self._convert(expr.value, target_t, expr.line)
        return target_t

    def _call(self, expr: A.Call) -> CType:
        func = self.functions.get(expr.func)
        if func is not None:
            if len(expr.args) != len(func.params):
                raise TypeCheckError(
                    f"{expr.func} expects {len(func.params)} args, got {len(expr.args)}",
                    expr.line,
                )
            for i, (arg, param) in enumerate(zip(expr.args, func.params)):
                self.rvalue(arg)
                expr.args[i] = self._convert(arg, param.ctype, expr.line)
            return func.ret

        sig = self.builtins.get(expr.func)
        if sig is None:
            raise TypeCheckError(f"call to undefined function {expr.func!r}", expr.line)
        if len(expr.args) < len(sig.params) or (
            len(expr.args) > len(sig.params) and not sig.variadic
        ):
            raise TypeCheckError(
                f"{expr.func} expects {len(sig.params)} args, got {len(expr.args)}",
                expr.line,
            )
        for i, arg in enumerate(expr.args):
            self.rvalue(arg)
            if i < len(sig.params):
                expr.args[i] = self._convert(arg, sig.params[i], expr.line)
            else:
                expr.args[i] = self._default_promote(arg)
        return sig.ret

    def _default_promote(self, arg: A.Expr) -> A.Expr:
        """C default argument promotions for variadic arguments."""
        ctype = arg.ctype
        if isinstance(ctype, PrimType):
            if ctype.kind == "float":
                return self._convert(arg, DOUBLE, arg.line)
            if ctype.is_integer and _RANK[ctype.kind] < _RANK["int"]:
                return self._convert(arg, INT, arg.line)
        return arg

    # -- conversions -----------------------------------------------------------------

    def _convert(self, expr: A.Expr, to: CType, line: int) -> A.Expr:
        """Insert an implicit conversion of *expr* to *to* if needed."""
        frm = expr.ctype
        if frm is None:
            frm = self.rvalue(expr)
        if isinstance(to, PointerType):
            if is_null_ptr(expr):
                expr.ctype = to
                return expr
            if isinstance(frm, PointerType):
                if _pointer_compatible(to, frm):
                    expr.ctype = to
                    return expr
                raise TypeCheckError(
                    f"incompatible pointer assignment: {frm} -> {to} "
                    "(use an explicit cast if this aliasing is intended)",
                    line,
                )
            raise TypeCheckError(f"cannot convert {frm} to {to}", line)
        if isinstance(to, PrimType):
            if isinstance(frm, PointerType):
                raise TypeCheckError(
                    f"implicit pointer-to-{to} conversion is migration-unsafe", line
                )
            if not isinstance(frm, PrimType):
                raise TypeCheckError(f"cannot convert {frm} to {to}", line)
            if frm.kind == to.kind:
                return expr
            cast = A.Cast(to=to, operand=expr, line=line)
            cast.ctype = to
            return cast
        if isinstance(to, StructType) or isinstance(to, ArrayType):
            raise TypeCheckError(f"cannot convert to aggregate type {to}", line)
        if isinstance(to, VoidType):
            return expr
        raise TypeCheckError(f"cannot convert {frm} to {to}", line)


def _const_value(expr: A.Expr) -> Optional[float | int]:
    """Constant value of a (possibly implicitly cast) literal, else None."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.FloatLit):
        return expr.value
    if isinstance(expr, A.CharLit):
        return expr.value
    if isinstance(expr, A.Null):
        return 0
    if isinstance(expr, A.Unary) and expr.op == "-":
        v = _const_value(expr.operand)
        return None if v is None else -v
    if isinstance(expr, A.Cast):
        return _const_value(expr.operand)
    return None
