"""Compiled programs and their per-architecture specialization.

A :class:`CompiledProgram` is architecture-neutral: functions as neutral
IR, the global table, the type registry (shared type ids — the wire format
carries these), the poll-point registry, and per-function liveness tables.
Because compilation is deterministic, compiling the same source on two
hosts yields identical neutral programs; in the migration environment the
*same* object simply plays the role of "the annotated source compiled on
every machine".

:meth:`CompiledProgram.for_arch` produces an :class:`ArchImage` — the
"executable" for one host: concrete frame layouts, global addresses, and
specialized instruction operands.  Specialization never changes the
number or order of instructions (see :mod:`repro.vm.ir`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.liveness import compute_liveness
from repro.analysis.pollpoints import PollStrategy, insert_poll_points
from repro.clang import cast as A
from repro.clang.ctypes import (
    ArrayType,
    CHAR,
    CType,
    PointerType,
    PrimType,
    TypeLayout,
    UINT,
    VoidType,
    type_key,
)
from repro.clang.parser import parse
from repro.clang.unsafe import check_migration_safety
from repro.vm.builtins import BUILTIN_INDEX, BUILTIN_SIGS, BUILTINS, RAND_STATE_GLOBAL
from repro.vm.compiler import CompileError, FuncIR, GlobalInfo, IRGen, kind_of
from repro.vm.ir import Instr, Op
from repro.vm.normalize import normalize_function
from repro.vm.typecheck import TypeChecker

__all__ = ["CompiledProgram", "ArchImage", "FuncImage", "compile_program"]


@dataclass
class FuncImage:
    """One function specialized for one architecture."""

    name: str
    code: list[Instr]
    frame_size: int
    var_offsets: list[int]
    var_kinds: list[Optional[str]]  # scalar kind, or None for aggregates
    nparams: int


@dataclass
class ArchImage:
    """A program specialized for one architecture."""

    arch: object
    layout: TypeLayout
    funcs: list[FuncImage]
    #: absolute address of each global
    global_addrs: list[int]
    #: byte size of each global on this arch
    global_sizes: list[int]


class CompiledProgram:
    """A migratable program: neutral IR + shared tables."""

    def __init__(self, unit: A.TranslationUnit, source: str) -> None:
        self.unit = unit
        self.source = source
        self.functions: list[FuncIR] = []
        self._func_index: dict[str, int] = {}
        self._func_ret: dict[str, CType] = {}
        self.globals: list[GlobalInfo] = []
        self._global_index: dict[str, int] = {}
        self._strings: dict[str, int] = {}
        self.types: list[CType] = []
        self._type_index: dict[tuple, int] = {}
        self.n_polls = 0
        #: unsafe-feature findings (empty when compiled strict)
        self.safety_findings = []
        self._images: dict[str, ArchImage] = {}

    # -- registration API used by IRGen ------------------------------------------

    def func_index(self, name: str) -> Optional[int]:
        """Index of user function *name*, or None (then try builtins)."""
        return self._func_index.get(name)

    def function_ret(self, name: str) -> CType:
        """Declared return type of user function *name*."""
        return self._func_ret[name]

    def global_index(self, name: str) -> Optional[int]:
        """Index of global *name*, or None if not a global."""
        return self._global_index.get(name)

    def global_ctype(self, idx: int) -> CType:
        """Declared type of global *idx*."""
        return self.globals[idx].ctype

    def builtin_index(self, name: str) -> Optional[int]:
        """CALLB index of builtin *name*, or None."""
        return BUILTIN_INDEX.get(name)

    def builtin_ret(self, name: str) -> CType:
        """Return type of builtin *name*."""
        return BUILTIN_SIGS[name].ret

    def register_type(self, ctype: CType) -> int:
        key = type_key(ctype)
        idx = self._type_index.get(key)
        if idx is None:
            idx = len(self.types)
            self.types.append(ctype)
            self._type_index[key] = idx
            # register subterms too, so every type reachable from a block
            # (struct fields, array elements, pointee types) has an id the
            # wire can carry; self-referential structs terminate because
            # the parent is indexed before recursing
            if isinstance(ctype, PointerType) and not isinstance(ctype.target, VoidType):
                self.register_type(ctype.target)
            elif isinstance(ctype, ArrayType):
                self.register_type(ctype.elem)
            else:
                from repro.clang.ctypes import StructType

                if isinstance(ctype, StructType) and ctype.is_complete:
                    for _fname, ftype in ctype.fields:
                        self.register_type(ftype)
        return idx

    def register_ptr_elem(self, elem: CType) -> CType:
        """Neutral PTRADD/PTRDIFF operand (registered for the TI table)."""
        if not isinstance(elem, VoidType):
            self.register_type(elem)
        return elem

    def intern_string(self, text: str) -> int:
        """Global index of the interned string literal *text*."""
        idx = self._strings.get(text)
        if idx is not None:
            return idx
        data = text.encode("utf-8") + b"\0"
        name = f"__str_{len(self._strings)}"
        gidx = self._add_global(
            GlobalInfo(
                name=name,
                ctype=ArrayType(CHAR, len(data)),
                init_bytes=data,
                is_string=True,
            )
        )
        self._strings[text] = gidx
        return gidx

    def next_poll_id(self) -> int:
        """Allocate the next program-wide poll-point id."""
        pid = self.n_polls
        self.n_polls += 1
        return pid

    def _add_global(self, info: GlobalInfo) -> int:
        idx = len(self.globals)
        self.globals.append(info)
        self._global_index[info.name] = idx
        self.register_type(info.ctype)
        return idx

    # -- lookups used by the runtime ------------------------------------------------

    def type_by_id(self, type_id: int) -> CType:
        """The type registered under wire id *type_id*."""
        return self.types[type_id]

    def type_id(self, ctype: CType) -> int:
        """Wire id of *ctype* (must have been registered at compile time)."""
        return self._type_index[type_key(ctype)]

    def function(self, name: str) -> FuncIR:
        """Compiled IR of function *name*."""
        return self.functions[self._func_index[name]]

    @property
    def main_index(self) -> int:
        """Index of ``main`` (raises if the program has none)."""
        idx = self._func_index.get("main")
        if idx is None:
            raise CompileError("program has no main()")
        return idx

    #: resume-time live variables: (func index, resume pc) -> var indices
    def live_at(self, func_idx: int, resume_pc: int) -> tuple[int, ...]:
        """Ordered live variable indices at a resume pc (poll/call + 1)."""
        fir = self.functions[func_idx]
        assert fir.liveness is not None
        return fir.liveness.resume_live.get(resume_pc, ())

    # -- specialization ---------------------------------------------------------------

    def for_arch(self, arch) -> ArchImage:
        """The executable image of this program for *arch* (cached)."""
        image = self._images.get(arch.name)
        if image is None:
            image = self._specialize(arch)
            self._images[arch.name] = image
        return image

    def ti_table(self, arch):
        """The shared TI table for *arch* (paper: linked into the
        executable together with the saving/restoring functions)."""
        from repro.msr.ti import TITable

        image = self.for_arch(arch)
        if not hasattr(image, "ti"):
            image.ti = TITable(self, image.layout)
        return image.ti

    def _specialize(self, arch) -> ArchImage:
        layout = TypeLayout(arch)

        # global addresses: declaration order, aligned
        addr = arch.global_base
        global_addrs: list[int] = []
        global_sizes: list[int] = []
        for info in self.globals:
            size = layout.sizeof(info.ctype)
            align = layout.alignof(info.ctype)
            addr = _align_up(addr, align)
            global_addrs.append(addr)
            global_sizes.append(size)
            addr += size

        funcs: list[FuncImage] = []
        for fir in self.functions:
            funcs.append(self._specialize_func(fir, layout, global_addrs, arch))
        return ArchImage(
            arch=arch,
            layout=layout,
            funcs=funcs,
            global_addrs=global_addrs,
            global_sizes=global_sizes,
        )

    def _specialize_func(self, fir: FuncIR, layout: TypeLayout, gaddrs, arch) -> FuncImage:
        # frame layout: declaration order with natural alignment
        offsets: list[int] = []
        kinds: list[Optional[str]] = []
        off = 0
        for var in fir.norm.variables:
            size = layout.sizeof(var.ctype)
            align = layout.alignof(var.ctype)
            off = _align_up(off, align)
            offsets.append(off)
            kinds.append(kind_of(var.ctype) if var.ctype.is_scalar else None)
            off += size
        frame_size = _align_up(off, 16) if off else 16

        def wrap(kind: str):
            """(mask, signbit) wrap spec for integer result kinds."""
            if kind in ("float", "double"):
                return None
            bits = arch.bit_width(kind) if kind != "ptr" else arch.ptr_size * 8
            mask = (1 << bits) - 1
            sign = (1 << (bits - 1)) if arch.is_signed(kind) else 0
            return (mask, sign)

        code: list[Instr] = []
        for op, a, b in fir.code:
            if op == Op.PUSH_SIZEOF:
                code.append((Op.PUSH, layout.sizeof(a), None))
            elif op == Op.LEA_L:
                code.append((Op.LEA_L, offsets[a], None))
            elif op == Op.LEA_G:
                code.append((Op.PUSH, gaddrs[a], None))
            elif op == Op.LDL:
                code.append((Op.LDL, offsets[a[0]], a[1]))
            elif op == Op.STL:
                code.append((Op.STL, offsets[a[0]], a[1]))
            elif op == Op.LDG:
                code.append((Op.LDG, gaddrs[a[0]], a[1]))
            elif op == Op.STG:
                code.append((Op.STG, gaddrs[a[0]], a[1]))
            elif op == Op.OFFSET:
                code.append((Op.OFFSET, layout.field_offset(a[0], a[1]), None))
            elif op == Op.COPYBLK:
                code.append((Op.COPYBLK, layout.sizeof(a), None))
            elif op in (Op.PTRADD, Op.PTRSUB, Op.PTRDIFF):
                size = 1 if isinstance(a, VoidType) else layout.sizeof(a)
                code.append((op, size, None))
            elif op in (
                Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
                Op.NEG, Op.BAND, Op.BOR, Op.BXOR, Op.BNOT, Op.SHL, Op.SHR,
            ):
                code.append((op, wrap(a), None))
            elif op == Op.CVT:
                frm, to = a
                if to in ("float", "double"):
                    code.append((Op.CVT, ("f",), None))
                else:
                    mask, sign = wrap(to)
                    code.append((Op.CVT, ("i", mask, sign), None))
            else:
                code.append((op, a, b))

        return FuncImage(
            name=fir.name,
            code=code,
            frame_size=frame_size,
            var_offsets=offsets,
            var_kinds=kinds,
            nparams=len(fir.norm.params),
        )


def compile_program(
    source: str,
    *,
    poll_strategy: PollStrategy | str = PollStrategy.LOOPS,
    strict_safety: bool = True,
    save_all_liveness: bool = False,
) -> CompiledProgram:
    """Front door: parse, check, normalize, annotate, and compile *source*.

    ``poll_strategy`` selects poll-point placement (paper §4.3);
    ``save_all_liveness`` disables the live-variable analysis (ablation:
    every local is saved at every migration point).
    """
    if isinstance(poll_strategy, str):
        poll_strategy = PollStrategy(poll_strategy)

    unit = parse(source)
    prog = CompiledProgram(unit, source)
    prog.safety_findings = check_migration_safety(unit, strict=strict_safety)

    checker = TypeChecker(unit, BUILTIN_SIGS)
    checker.check()

    # program-level tables must exist before IR generation
    for i, func in enumerate(unit.functions):
        if func.name in prog._func_index:
            raise CompileError(f"redefinition of function {func.name!r}", func.line)
        if func.name in BUILTIN_INDEX:
            raise CompileError(
                f"function {func.name!r} shadows a builtin", func.line
            )
        prog._func_index[func.name] = i
        prog._func_ret[func.name] = func.ret

    for gvar in unit.globals:
        init = None
        init_list = None
        if gvar.init is not None:
            init = _const_of(gvar.init)
        if gvar.init_list is not None:
            init_list = [_const_of(e) for e in gvar.init_list]
        prog._add_global(
            GlobalInfo(name=gvar.name, ctype=gvar.ctype, init=init, init_list=init_list)
        )

    # hidden PRNG state cell — migrates with the rest of the globals
    prog._add_global(
        GlobalInfo(name=RAND_STATE_GLOBAL, ctype=UINT, init=1, is_hidden=True)
    )

    norms = [normalize_function(f) for f in unit.functions]
    for nf in norms:
        insert_poll_points(nf, poll_strategy)

    for nf in norms:
        fir = IRGen(prog, nf).run()
        prog.functions.append(fir)

    for fir in prog.functions:
        # register every variable type so the TI table covers all blocks
        for var in fir.norm.variables:
            prog.register_type(var.ctype)
        fir.liveness = compute_liveness(fir.code, fir.nvars, save_all=save_all_liveness)

    return prog


def _const_of(expr: A.Expr) -> float | int:
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.FloatLit):
        return expr.value
    if isinstance(expr, A.CharLit):
        return expr.value
    if isinstance(expr, A.Null):
        return 0
    if isinstance(expr, A.Unary) and expr.op == "-":
        return -_const_of(expr.operand)
    if isinstance(expr, A.Cast):
        inner = _const_of(expr.operand)
        if isinstance(expr.to, PrimType) and expr.to.is_integer:
            return int(inner)
        return float(inner)
    raise CompileError("global initializer must be a constant")


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
