"""Simulated process substrate.

The paper migrates native C processes; we cannot use native address spaces
from Python, so this subpackage provides the closest synthetic equivalent
(see DESIGN.md §2): a deterministic mini-C compiler targeting a stack VM
whose data lives in a **byte-addressable simulated memory** laid out per
:class:`~repro.arch.machine.MachineArch` — genuine endianness, type sizes,
struct padding, and segment addresses per host.  The migration layer
interacts with a process only through this memory, its type tables, and
its call stack, exactly as the paper's library interacts with a real
process.

Modules:

- :mod:`repro.vm.memory` — segmented memory with a heap allocator
- :mod:`repro.vm.ir` — the instruction set
- :mod:`repro.vm.normalize` — AST normalization (call hoisting, scoping)
- :mod:`repro.vm.compiler` — typed AST → IR
- :mod:`repro.vm.program` — compiled program + per-arch specialization
- :mod:`repro.vm.builtins` — the libc subset
- :mod:`repro.vm.interpreter` — the executor with poll hooks
- :mod:`repro.vm.process` — a runnable/migratable process

Convenience re-exports are resolved lazily to keep the analysis package
(which the compiler depends on) importable without cycles.
"""

from repro.vm.memory import Memory, MemoryFault

__all__ = [
    "Memory",
    "MemoryFault",
    "CompiledProgram",
    "compile_program",
    "Process",
    "ProcessExit",
]

_LAZY = {
    "CompiledProgram": ("repro.vm.program", "CompiledProgram"),
    "compile_program": ("repro.vm.program", "compile_program"),
    "Process": ("repro.vm.process", "Process"),
    "ProcessExit": ("repro.vm.process", "ProcessExit"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    return getattr(module, target[1])
