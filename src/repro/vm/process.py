"""A runnable, migratable simulated process.

A :class:`Process` binds a :class:`~repro.vm.program.CompiledProgram` to
one host architecture: simulated memory laid out per that architecture,
the MSRLT tracking its memory blocks, the TI table, and the interpreter
state (the frame stack).  This is the unit the migration engine collects
from and restores into.
"""

from __future__ import annotations

from typing import Optional

from repro.clang.ctypes import ArrayType, CType, UCHAR
from repro.msr.msrlt import MSRLT, MemoryBlock
from repro.msr.ti import TITable
from repro.vm.builtins import RAND_STATE_GLOBAL
from repro.vm.compiler import kind_of
from repro.vm.interpreter import Frame, Interpreter, RunResult, VMError
from repro.vm.memory import Memory

__all__ = ["Process", "ProcessExit"]


class ProcessExit(Exception):
    """Raised by ``exit()``/``abort()`` inside the VM."""

    def __init__(self, code: int) -> None:
        super().__init__(f"process exited with code {code}")
        self.code = code


class Process:
    """One simulated process on one host architecture."""

    def __init__(self, program, arch, name: str = "proc") -> None:
        self.program = program
        self.arch = arch
        self.name = name
        self.image = program.for_arch(arch)
        self.layout = self.image.layout
        self.memory = Memory(arch)
        self.msrlt = MSRLT(self.layout)
        # the TI table is immutable per (program, arch): share it
        self.ti = program.ti_table(arch)
        self.frames: list[Frame] = []
        self._interp = Interpreter(self)
        self._stdout: list[str] = []
        self._loaded = False
        self.exited = False
        self.exit_code: Optional[int] = None
        # migration plumbing
        self.migration_pending = False
        self.migrate_at_poll: Optional[int] = None  # restrict to one poll id
        self.migrate_after_polls: Optional[int] = None  # fire on k-th match
        # counters (overhead experiment §4.3)
        self.steps = 0
        self.polls = 0
        self.mallocs = 0

    # -- loading -----------------------------------------------------------------

    def load(self) -> None:
        """Lay out and initialize globals; register their MSR blocks."""
        if self._loaded:
            return
        memory = self.memory
        layout = self.layout
        for idx, info in enumerate(self.program.globals):
            addr = self.image.global_addrs[idx]
            size = self.image.global_sizes[idx]
            memory.zero(addr, size)
            if info.init is not None:
                memory.store(kind_of(info.ctype), addr, info.init)
            elif info.init_list is not None:
                elem = info.ctype.elem  # type: ignore[union-attr]
                stride = layout.sizeof(elem)
                kind = kind_of(elem)
                for i, value in enumerate(info.init_list):
                    memory.store(kind, addr + i * stride, value)
            elif info.init_bytes is not None:
                memory.write_bytes(addr, info.init_bytes)
            self.msrlt.register_global(idx, addr, info.ctype, name=info.name)
        self._loaded = True

    def start(self) -> None:
        """Load and push the initial ``main`` frame."""
        self.load()
        if self.frames:
            raise VMError("process already started")
        self.push_frame(self.program.main_index, [])

    # -- execution -----------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run until exit, a triggered poll-point, or the step budget."""
        if self.exited:
            return RunResult(status="exit", exit_code=self.exit_code or 0)
        if not self.frames:
            self.start()
        try:
            result = self._interp.run(max_steps)
        except ProcessExit as exc:
            result = RunResult(status="exit", exit_code=exc.code)
        if result.status == "exit":
            self.exited = True
            self.exit_code = result.exit_code
            self.frames.clear()
        return result

    def run_to_completion(self) -> int:
        """Run to exit; raises if the process stops at a poll instead."""
        result = self.run()
        if result.status != "exit":
            raise VMError(f"process stopped with status {result.status!r}")
        return result.exit_code

    def push_frame(self, func_idx: int, args: list) -> Frame:
        """Create an activation record and make it the running frame."""
        image = self.image.funcs[func_idx]
        saved_sp = self.memory.sp
        base = self.memory.stack_alloc(image.frame_size)
        # deterministic frames: uninitialized locals read as zero on every
        # host, so divergent garbage can never masquerade as working code
        self.memory.zero(base, image.frame_size)
        for i, value in enumerate(args):
            kind = image.var_kinds[i]
            self.memory.store(kind, base + image.var_offsets[i], value)
        frame = Frame(func_idx, image, base, saved_sp)
        self.frames.append(frame)
        return frame

    def should_migrate_at(self, poll_id: int) -> bool:
        """Whether a pending migration request fires at this poll point.

        ``migrate_at_poll`` restricts firing to one poll-point id;
        ``migrate_after_polls = k`` fires on the k-th matching poll
        (both model the scheduler's request arriving mid-execution).
        """
        if self.migrate_at_poll is not None and poll_id != self.migrate_at_poll:
            return False
        if self.migrate_after_polls is not None:
            self.migrate_after_polls -= 1
            if self.migrate_after_polls > 0:
                return False
            self.migrate_after_polls = None
        return True

    # -- stdio --------------------------------------------------------------------------

    def write_stdout(self, text: str) -> None:
        """Append to the process's captured stdout (used by builtins)."""
        self._stdout.append(text)

    @property
    def stdout(self) -> str:
        """Everything the process printed so far."""
        return "".join(self._stdout)

    # -- heap (typed allocation feeding the MSRLT) ------------------------------------------

    def typed_malloc(self, nbytes: int, type_id: Optional[int]) -> int:
        """``malloc`` with the pre-compiler's element-type annotation."""
        self.mallocs += 1
        elem: CType = UCHAR if type_id is None else self.program.type_by_id(type_id)
        esize = self.layout.sizeof(elem)
        if nbytes > 0 and nbytes % esize == 0:
            count = nbytes // esize
        else:
            # size not a whole element multiple: fall back to a byte block
            elem = UCHAR
            count = max(nbytes, 1)
        addr = self.memory.heap_alloc(max(nbytes, 1))
        self.msrlt.register_heap(addr, elem, count)
        return addr

    def typed_free(self, addr: int) -> None:
        """``free``: unregister the MSR block and recycle the memory."""
        if addr == 0:
            return
        self.msrlt.unregister(addr)
        self.memory.heap_free(addr)

    def typed_realloc(self, addr: int, nbytes: int, type_id: Optional[int]) -> int:
        """``realloc`` with the pre-compiler's element-type annotation.

        C semantics: ``realloc(NULL, n)`` is ``malloc(n)``;
        ``realloc(p, 0)`` frees and returns NULL.  When the padded
        capacity of the existing allocation already covers *nbytes* the
        block is resized in place (same address, re-registered in the
        MSRLT with the new element count); otherwise the contents move
        to a fresh allocation and the old one is freed — which may hand
        the *same* address back through the allocator's free list, the
        scenario the MSRLT's last-hit cache must survive.
        """
        if addr == 0:
            return self.typed_malloc(nbytes, type_id)
        if nbytes <= 0:
            self.typed_free(addr)
            return 0
        old_size = self.memory.heap_size_of(addr)
        elem: CType = UCHAR if type_id is None else self.program.type_by_id(type_id)
        esize = self.layout.sizeof(elem)
        if nbytes % esize != 0:
            elem, esize = UCHAR, 1
        if nbytes <= old_size:
            # in place: the padded capacity is retained, only the MSR
            # block's shape (element count) follows the new size
            self.msrlt.unregister(addr)
            self.msrlt.register_heap(addr, elem, nbytes // esize)
            return addr
        new_addr = self.typed_malloc(nbytes, type_id)
        self.memory.write_bytes(
            new_addr, self.memory.read_bytes(addr, min(old_size, nbytes))
        )
        self.typed_free(addr)
        return new_addr

    def restore_heap_block(self, elem: CType, count: int, serial: int) -> MemoryBlock:
        """Allocate + register a heap block during restoration, keeping the
        source host's serial so logical ids stay stable across re-migration."""
        size = self.layout.sizeof(elem) * count
        addr = self.memory.heap_alloc(size)
        return self.msrlt.register_heap(addr, elem, count, serial=serial)

    # -- stack block registration (collection/restoration support) ----------------------------

    def register_stack_blocks(self) -> int:
        """Register every live local variable as an MSR block.

        Done lazily at migration time (not per call) so that ordinary
        execution pays no per-frame MSRLT cost — the design §4.3 argues
        for.  Returns the number of blocks registered.
        """
        n = 0
        for depth, frame in enumerate(self.frames):
            fir = self.program.functions[frame.func_idx]
            offsets = frame.image.var_offsets
            for var_idx, var in enumerate(fir.norm.variables):
                if self.msrlt.has_logical((1, depth, var_idx)):  # idempotent
                    continue
                self.msrlt.register_stack(
                    depth, var_idx, frame.base + offsets[var_idx], var.ctype, name=var.name
                )
                n += 1
        return n

    def create_restored_frame(self, func_idx: int, resume_pc: int) -> Frame:
        """Rebuild one activation record during restoration (outermost
        first); its locals are filled by the restorer afterwards."""
        frame = self.push_frame(func_idx, [])
        frame.pc = resume_pc
        return frame

    # -- PRNG state (lives in simulated memory; migrates) ---------------------------------------

    def _rand_addr(self) -> int:
        idx = self.program.global_index(RAND_STATE_GLOBAL)
        assert idx is not None
        return self.image.global_addrs[idx]

    def get_rand_state(self) -> int:
        """Read the PRNG cell from simulated memory."""
        return self.memory.load("uint", self._rand_addr())

    def set_rand_state(self, value: int) -> None:
        """Write the PRNG cell in simulated memory."""
        self.memory.store("uint", self._rand_addr(), value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.name} on {self.arch.name}, {len(self.frames)} frames>"
