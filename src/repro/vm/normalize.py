"""AST normalization: the shape that makes frames migratable.

The paper's transformation (ref [6] of the paper) requires that process
migration can happen only at *statement boundaries* and that every frame
of a nested call chain can be re-created and resumed on the destination.
In our stack-VM setting that translates into two invariants (checked by
the interpreter):

- at every ``POLL`` instruction the evaluation stack is empty;
- at every ``CALL`` instruction the caller's evaluation stack is empty
  once the arguments are popped.

This pass rewrites each type-checked function so the IR generator can
guarantee both:

1. **Scope flattening** — every local is hoisted to function scope with a
   unique name (shadowing resolved by renaming); declarations become
   plain assignments.
2. **Side-effect linearization** — assignments, increments, and calls are
   pulled out of larger expressions into preceding statements (with
   compiler temporaries), so every remaining expression is pure except
   for three statement-level shapes: ``call(...);``, ``lvalue = call(...);``
   and ``return call(...);`` (tail call).
3. **Short-circuit preservation** — ``&&``/``||``/``?:`` whose operands
   have side effects are expanded into explicit ``if`` statements, so
   hoisting never changes evaluation semantics.
4. **Loop decomposition** — ``for``/``while`` conditions with hoisted
   side effects carry them in ``cond_pre`` so they re-run each iteration;
   ``for`` init/step become statement lists (``continue`` still reaches
   the step).

After normalization every statement receives a ``stmt_id``; the annotator
and the execution-state tables are keyed on these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.clang import cast as A
from repro.clang.ctypes import (
    ArrayType,
    CType,
    INT,
    PointerType,
    PrimType,
    StructType,
    VoidType,
)

__all__ = ["VarInfo", "NormFunc", "NormalizeError", "normalize_function"]


class NormalizeError(Exception):
    """A construct that cannot be normalized (should be rare — the type
    checker rejects most problems first)."""


@dataclass
class VarInfo:
    """One function-scope variable slot (parameter, local, or temp)."""

    name: str
    ctype: CType
    is_param: bool = False
    is_temp: bool = False
    #: original source name before uniquing (for diagnostics/annotation)
    source_name: str = ""

    def __post_init__(self) -> None:
        if not self.source_name:
            self.source_name = self.name


@dataclass
class NormFunc:
    """A normalized function: flat variables + linearized body."""

    name: str
    ret: CType
    params: list[VarInfo]
    variables: list[VarInfo]  # params first, then locals/temps in order
    body: list[A.Stmt]
    var_index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.var_index:
            self.var_index = {v.name: i for i, v in enumerate(self.variables)}


class _Normalizer:
    def __init__(self, func: A.FuncDef) -> None:
        self.func = func
        self.variables: list[VarInfo] = []
        self.var_names: set[str] = set()
        self.temp_counter = 0
        # rename environment stack: source name -> unique name
        self.env_stack: list[dict[str, str]] = [{}]

    # -- variable management ---------------------------------------------------

    def _unique(self, name: str) -> str:
        if name not in self.var_names:
            return name
        i = 2
        while f"{name}__{i}" in self.var_names:
            i += 1
        return f"{name}__{i}"

    def add_var(self, name: str, ctype: CType, is_param: bool = False) -> str:
        uname = self._unique(name)
        self.var_names.add(uname)
        self.variables.append(
            VarInfo(name=uname, ctype=ctype, is_param=is_param, source_name=name)
        )
        self.env_stack[-1][name] = uname
        return uname

    def new_temp(self, ctype: CType) -> str:
        self.temp_counter += 1
        name = f"__t{self.temp_counter}"
        self.var_names.add(name)
        self.variables.append(VarInfo(name=name, ctype=ctype, is_temp=True))
        return name

    def resolve(self, name: str) -> Optional[str]:
        for env in reversed(self.env_stack):
            if name in env:
                return env[name]
        return None

    # -- entry -------------------------------------------------------------------

    def run(self) -> NormFunc:
        for p in self.func.params:
            self.add_var(p.name, p.ctype, is_param=True)
        body = self._stmt_list(self.func.body.body)
        nf = NormFunc(
            name=self.func.name,
            ret=self.func.ret,
            params=[v for v in self.variables if v.is_param],
            variables=self.variables,
            body=body,
        )
        _assign_stmt_ids(nf.body)
        return nf

    # -- statements -----------------------------------------------------------------

    def _stmt_list(self, stmts: list[A.Stmt]) -> list[A.Stmt]:
        out: list[A.Stmt] = []
        for stmt in stmts:
            out.extend(self._stmt(stmt))
        return out

    def _scoped(self, stmt: A.Stmt) -> list[A.Stmt]:
        """Normalize a sub-statement in its own scope."""
        self.env_stack.append({})
        try:
            return self._stmt(stmt)
        finally:
            self.env_stack.pop()

    def _scoped_block(self, stmt: A.Stmt) -> A.Stmt:
        stmts = self._scoped(stmt)
        if len(stmts) == 1:
            return stmts[0]
        return A.Block(body=stmts, line=stmt.line)

    def _stmt(self, stmt: A.Stmt) -> list[A.Stmt]:
        if isinstance(stmt, A.Block):
            self.env_stack.append({})
            try:
                return [A.Block(body=self._stmt_list(stmt.body), line=stmt.line)]
            finally:
                self.env_stack.pop()

        if isinstance(stmt, A.DeclStmt):
            out: list[A.Stmt] = []
            for decl in stmt.decls:
                uname = self.add_var(decl.name, decl.ctype)
                if decl.init is not None:
                    pre, value = self._rv(decl.init)
                    out.extend(pre)
                    out.append(self._mk_assign(_ident(uname, decl.ctype), value, decl.line))
                if decl.init_list is not None:
                    elem = decl.ctype.elem  # type: ignore[union-attr]
                    for i, item in enumerate(decl.init_list):
                        pre, value = self._rv(item)
                        out.extend(pre)
                        target = A.Index(
                            base=_ident(uname, decl.ctype),
                            index=A.IntLit(value=i, line=decl.line),
                            line=decl.line,
                        )
                        target.index.ctype = INT
                        target.ctype = elem
                        out.append(self._mk_assign(target, value, decl.line))
            return out

        if isinstance(stmt, A.ExprStmt):
            return self._expr_stmt(stmt.expr)

        if isinstance(stmt, A.If):
            pre, cond = self._rv(stmt.cond)
            then = self._scoped_block(stmt.then)
            other = self._scoped_block(stmt.other) if stmt.other is not None else None
            return [*pre, A.If(cond=cond, then=then, other=other, line=stmt.line)]

        if isinstance(stmt, A.While):
            pre, cond = self._rv(stmt.cond)
            body = self._scoped_block(stmt.body)
            return [A.While(cond=cond, body=body, cond_pre=pre, line=stmt.line)]

        if isinstance(stmt, A.DoWhile):
            body = self._scoped_block(stmt.body)
            pre, cond = self._rv(stmt.cond)
            return [A.DoWhile(body=body, cond=cond, cond_pre=pre, line=stmt.line)]

        if isinstance(stmt, A.For):
            init_stmts = self._expr_stmt(stmt.init) if stmt.init is not None else []
            if stmt.cond is not None:
                cond_pre, cond = self._rv(stmt.cond)
            else:
                cond_pre, cond = [], None
            step_stmts = self._expr_stmt(stmt.step) if stmt.step is not None else []
            body = self._scoped_block(stmt.body)
            return [
                A.For(
                    init=None,
                    cond=cond,
                    step=None,
                    body=body,
                    init_stmts=init_stmts,
                    cond_pre=cond_pre,
                    step_stmts=step_stmts,
                    line=stmt.line,
                )
            ]

        if isinstance(stmt, A.Return):
            if stmt.value is None:
                return [A.Return(value=None, line=stmt.line)]
            # tail call: `return f(...)` with pure args stays direct
            if isinstance(stmt.value, A.Call):
                pre, call = self._call_with_pure_args(stmt.value)
                return [*pre, A.Return(value=call, line=stmt.line)]
            pre, value = self._rv(stmt.value)
            return [*pre, A.Return(value=value, line=stmt.line)]

        if isinstance(stmt, A.Switch):
            pre, cond = self._rv(stmt.cond)
            cases = [
                A.SwitchCase(
                    value=c.value, body=self._stmt_list(c.body), line=c.line
                )
                for c in stmt.cases
            ]
            return [*pre, A.Switch(cond=cond, cases=cases, line=stmt.line)]

        if isinstance(stmt, (A.Break, A.Continue, A.PollHint)):
            return [stmt]

        raise NormalizeError(f"cannot normalize {type(stmt).__name__}")

    def _expr_stmt(self, expr: A.Expr) -> list[A.Stmt]:
        """Normalize an expression in statement (value-discarded) position."""
        if isinstance(expr, A.Assign):
            return self._assign_stmt(expr)
        if isinstance(expr, A.Call):
            pre, call = self._call_with_pure_args(expr)
            return [*pre, A.ExprStmt(expr=call, line=expr.line)]
        if isinstance(expr, A.Unary) and expr.op in ("++", "--", "p++", "p--"):
            pre, _ = self._incdec(expr, need_value=False)
            return pre
        if isinstance(expr, A.Binary) and expr.op == ",":
            return self._expr_stmt(expr.left) + self._expr_stmt(expr.right)
        # value discarded: keep side effects only
        pre, value = self._rv(expr)
        del value
        return pre

    def _assign_stmt(self, expr: A.Assign) -> list[A.Stmt]:
        pre_t, target = self._lvalue(expr.target)

        if expr.op:  # compound: t op= v  ->  t = t op v (target now pure)
            pre_v, value = self._rv(expr.value)
            read = _copy_expr(target)
            binop = A.Binary(op=expr.op, left=read, right=value, line=expr.line)
            binop.ctype = _compound_result_type(target.ctype, value.ctype, expr.op)
            rhs = _implicit_cast(binop, target.ctype)
            return [*pre_t, *pre_v, self._mk_assign(target, rhs, expr.line)]

        # chained assignment `a = b = c` was typed as Assign in value position
        if isinstance(expr.value, A.Assign):
            pre_v = self._assign_stmt(expr.value)
            inner_target = pre_v[-1].expr.target  # type: ignore[attr-defined]
            value = _implicit_cast(_copy_expr(inner_target), target.ctype)
            return [*pre_t, *pre_v, self._mk_assign(target, value, expr.line)]

        if isinstance(expr.value, A.Call):
            pre_v, call = self._call_with_pure_args(expr.value)
            call.ctype = expr.value.ctype
            return [*pre_t, *pre_v, self._mk_assign(target, call, expr.line)]

        # typed-malloc pattern: keep `(T*)call(...)` intact so the compiler
        # can annotate the allocation with its element type (TI table)
        if isinstance(expr.value, A.Cast) and isinstance(expr.value.operand, A.Call):
            pre_v, call = self._call_with_pure_args(expr.value.operand)
            cast = A.Cast(to=expr.value.to, operand=call, line=expr.value.line)
            cast.ctype = expr.value.ctype
            return [*pre_t, *pre_v, self._mk_assign(target, cast, expr.line)]

        pre_v, value = self._rv(expr.value)
        return [*pre_t, *pre_v, self._mk_assign(target, value, expr.line)]

    def _mk_assign(self, target: A.Expr, value: A.Expr, line: int) -> A.ExprStmt:
        assign = A.Assign(op="", target=target, value=value, line=line)
        assign.ctype = target.ctype
        return A.ExprStmt(expr=assign, line=line)

    # -- expressions --------------------------------------------------------------

    def _rv(self, expr: A.Expr) -> tuple[list[A.Stmt], A.Expr]:
        """Linearize *expr* for use as a pure value.

        Returns ``(stmts, pure_expr)``: running *stmts* then evaluating
        *pure_expr* is equivalent to evaluating the original expression.
        """
        if isinstance(expr, (A.IntLit, A.FloatLit, A.CharLit, A.StringLit, A.Null)):
            return [], expr

        if isinstance(expr, A.Ident):
            uname = self.resolve(expr.name)
            if uname is not None and uname != expr.name:
                renamed = A.Ident(name=uname, line=expr.line)
                renamed.ctype = expr.ctype
                return [], renamed
            return [], expr

        if isinstance(expr, A.Assign):
            stmts = self._assign_stmt(expr)
            target = stmts[-1].expr.target  # type: ignore[attr-defined]
            return stmts, _copy_expr(target)

        if isinstance(expr, A.Call):
            pre, call = self._call_with_pure_args(expr)
            if isinstance(call.ctype, VoidType):
                raise NormalizeError(
                    f"void value of {call.func}() used in an expression"
                )
            tname = self.new_temp(call.ctype)
            tmp = _ident(tname, call.ctype)
            pre.append(self._mk_assign(_ident(tname, call.ctype), call, expr.line))
            return pre, tmp

        if isinstance(expr, A.Unary):
            if expr.op in ("++", "--", "p++", "p--"):
                return self._incdec(expr, need_value=True)
            if expr.op == "&":
                pre, operand = self._lvalue(expr.operand)
                out = A.Unary(op="&", operand=operand, line=expr.line)
                out.ctype = expr.ctype
                return pre, out
            pre, operand = self._rv(expr.operand)
            out = A.Unary(op=expr.op, operand=operand, line=expr.line)
            out.ctype = expr.ctype
            return pre, out

        if isinstance(expr, A.Binary):
            if expr.op in ("&&", "||"):
                return self._logical(expr)
            if expr.op == ",":
                pre = self._expr_stmt(expr.left)
                pre2, right = self._rv(expr.right)
                return [*pre, *pre2], right
            pre_l, left = self._rv(expr.left)
            pre_r, right = self._rv(expr.right)
            out = A.Binary(op=expr.op, left=left, right=right, line=expr.line)
            out.ctype = expr.ctype
            return [*pre_l, *pre_r], out

        if isinstance(expr, A.Cond):
            return self._ternary(expr)

        if isinstance(expr, A.Index):
            pre_b, base = self._rv(expr.base)
            pre_i, index = self._rv(expr.index)
            out = A.Index(base=base, index=index, line=expr.line)
            out.ctype = expr.ctype
            return [*pre_b, *pre_i], out

        if isinstance(expr, A.Member):
            if expr.arrow:
                pre, base = self._rv(expr.base)
            else:
                pre, base = self._lvalue(expr.base)
            out = A.Member(base=base, name=expr.name, arrow=expr.arrow, line=expr.line)
            out.ctype = expr.ctype
            return pre, out

        if isinstance(expr, A.Cast):
            if isinstance(expr.operand, A.Call):
                # hoist the whole `(T*)call(...)` so the typed-malloc
                # pattern survives into the generated assign statement
                pre, call = self._call_with_pure_args(expr.operand)
                cast = A.Cast(to=expr.to, operand=call, line=expr.line)
                cast.ctype = expr.ctype
                tname = self.new_temp(expr.ctype)
                tmp = _ident(tname, expr.ctype)
                pre.append(self._mk_assign(_ident(tname, expr.ctype), cast, expr.line))
                return pre, tmp
            pre, operand = self._rv(expr.operand)
            out = A.Cast(to=expr.to, operand=operand, line=expr.line)
            out.ctype = expr.ctype
            return pre, out

        if isinstance(expr, (A.SizeofType, A.SizeofExpr)):
            return [], expr

        raise NormalizeError(f"cannot linearize {type(expr).__name__}")

    def _lvalue(self, expr: A.Expr) -> tuple[list[A.Stmt], A.Expr]:
        """Linearize an lvalue expression (result remains an lvalue)."""
        if isinstance(expr, A.Ident):
            return self._rv(expr)
        if isinstance(expr, A.Unary) and expr.op == "*":
            pre, operand = self._rv(expr.operand)
            out = A.Unary(op="*", operand=operand, line=expr.line)
            out.ctype = expr.ctype
            return pre, out
        if isinstance(expr, A.Index):
            pre_b, base = self._rv(expr.base)
            pre_i, index = self._rv(expr.index)
            out = A.Index(base=base, index=index, line=expr.line)
            out.ctype = expr.ctype
            return [*pre_b, *pre_i], out
        if isinstance(expr, A.Member):
            if expr.arrow:
                pre, base = self._rv(expr.base)
            else:
                pre, base = self._lvalue(expr.base)
            out = A.Member(base=base, name=expr.name, arrow=expr.arrow, line=expr.line)
            out.ctype = expr.ctype
            return pre, out
        raise NormalizeError(f"not an lvalue: {type(expr).__name__}")

    def _call_with_pure_args(self, call: A.Call) -> tuple[list[A.Stmt], A.Call]:
        pre: list[A.Stmt] = []
        args: list[A.Expr] = []
        for arg in call.args:
            p, a = self._rv(arg)
            pre.extend(p)
            args.append(a)
        out = A.Call(func=call.func, args=args, line=call.line)
        out.ctype = call.ctype
        return pre, out

    def _incdec(self, expr: A.Unary, need_value: bool) -> tuple[list[A.Stmt], A.Expr]:
        pre, target = self._lvalue(expr.operand)
        one = A.IntLit(value=1, line=expr.line)
        one.ctype = INT
        op = "+" if expr.op in ("++", "p++") else "-"
        read = _copy_expr(target)
        update = A.Binary(op=op, left=read, right=one, line=expr.line)
        update.ctype = target.ctype
        rhs = _implicit_cast(update, target.ctype)

        if expr.op in ("++", "--") or not need_value:
            stmts = [*pre, self._mk_assign(target, rhs, expr.line)]
            return stmts, _copy_expr(target)

        # postfix with value: save old value first
        tname = self.new_temp(target.ctype)
        tmp = _ident(tname, target.ctype)
        stmts = [
            *pre,
            self._mk_assign(_ident(tname, target.ctype), _copy_expr(target), expr.line),
            self._mk_assign(target, rhs, expr.line),
        ]
        return stmts, tmp

    def _logical(self, expr: A.Binary) -> tuple[list[A.Stmt], A.Expr]:
        pre_l, left = self._rv(expr.left)
        pre_r, right = self._rv(expr.right)
        if not pre_r:
            out = A.Binary(op=expr.op, left=left, right=right, line=expr.line)
            out.ctype = expr.ctype
            return pre_l, out
        # right side has side effects: expand into an if to keep short-circuit
        tname = self.new_temp(INT)
        tmp = _ident(tname, INT)
        set_right = [*pre_r, self._mk_assign(_ident(tname, INT), _truth(right), expr.line)]
        if expr.op == "&&":
            const = A.IntLit(value=0, line=expr.line)
            const.ctype = INT
            branch = A.If(
                cond=left,
                then=A.Block(body=set_right, line=expr.line),
                other=self._mk_assign(_ident(tname, INT), const, expr.line),
                line=expr.line,
            )
        else:
            const = A.IntLit(value=1, line=expr.line)
            const.ctype = INT
            branch = A.If(
                cond=left,
                then=self._mk_assign(_ident(tname, INT), const, expr.line),
                other=A.Block(body=set_right, line=expr.line),
                line=expr.line,
            )
        return [*pre_l, branch], tmp

    def _ternary(self, expr: A.Cond) -> tuple[list[A.Stmt], A.Expr]:
        pre_c, cond = self._rv(expr.cond)
        pre_t, then = self._rv(expr.then)
        pre_o, other = self._rv(expr.other)
        if not pre_t and not pre_o:
            out = A.Cond(cond=cond, then=then, other=other, line=expr.line)
            out.ctype = expr.ctype
            return pre_c, out
        tname = self.new_temp(expr.ctype)
        tmp = _ident(tname, expr.ctype)
        branch = A.If(
            cond=cond,
            then=A.Block(
                body=[*pre_t, self._mk_assign(_ident(tname, expr.ctype), then, expr.line)],
                line=expr.line,
            ),
            other=A.Block(
                body=[*pre_o, self._mk_assign(_ident(tname, expr.ctype), other, expr.line)],
                line=expr.line,
            ),
            line=expr.line,
        )
        return [*pre_c, branch], tmp


# -- helpers -----------------------------------------------------------------


def _ident(name: str, ctype: CType) -> A.Ident:
    out = A.Ident(name=name)
    out.ctype = ctype
    return out


def _truth(expr: A.Expr) -> A.Expr:
    """``expr != 0`` as an int-valued expression (idempotent for ints)."""
    if expr.ctype == INT:
        return expr
    zero = A.IntLit(value=0, line=expr.line)
    zero.ctype = expr.ctype if isinstance(expr.ctype, PrimType) else INT
    out = A.Binary(op="!=", left=expr, right=zero, line=expr.line)
    out.ctype = INT
    return out


def _implicit_cast(expr: A.Expr, to: CType) -> A.Expr:
    if isinstance(to, PointerType) or expr.ctype is None:
        return expr
    if isinstance(expr.ctype, PrimType) and isinstance(to, PrimType):
        if expr.ctype.kind != to.kind:
            out = A.Cast(to=to, operand=expr, line=expr.line)
            out.ctype = to
            return out
    return expr


def _compound_result_type(lt: CType, rt: Optional[CType], op: str) -> CType:
    from repro.vm.typecheck import arith_result

    if isinstance(lt, PointerType):
        return lt
    if isinstance(lt, PrimType) and isinstance(rt, PrimType):
        return PrimType(arith_result(lt.kind, rt.kind))
    return lt


def _copy_expr(expr: A.Expr) -> A.Expr:
    """Deep copy of a *pure* expression tree (safe to re-evaluate)."""
    if isinstance(expr, A.Ident):
        out: A.Expr = A.Ident(name=expr.name, line=expr.line)
    elif isinstance(expr, A.IntLit):
        out = A.IntLit(value=expr.value, unsigned=expr.unsigned, long=expr.long, line=expr.line)
    elif isinstance(expr, A.FloatLit):
        out = A.FloatLit(value=expr.value, single=expr.single, line=expr.line)
    elif isinstance(expr, A.CharLit):
        out = A.CharLit(value=expr.value, line=expr.line)
    elif isinstance(expr, A.Null):
        out = A.Null(line=expr.line)
    elif isinstance(expr, A.Unary):
        out = A.Unary(op=expr.op, operand=_copy_expr(expr.operand), line=expr.line)
    elif isinstance(expr, A.Binary):
        out = A.Binary(
            op=expr.op, left=_copy_expr(expr.left), right=_copy_expr(expr.right), line=expr.line
        )
    elif isinstance(expr, A.Index):
        out = A.Index(base=_copy_expr(expr.base), index=_copy_expr(expr.index), line=expr.line)
    elif isinstance(expr, A.Member):
        out = A.Member(base=_copy_expr(expr.base), name=expr.name, arrow=expr.arrow, line=expr.line)
    elif isinstance(expr, A.Cast):
        out = A.Cast(to=expr.to, operand=_copy_expr(expr.operand), line=expr.line)
    elif isinstance(expr, (A.SizeofType, A.SizeofExpr)):
        return expr
    else:
        raise NormalizeError(f"cannot copy impure expression {type(expr).__name__}")
    out.ctype = expr.ctype
    return out


def _assign_stmt_ids(body: list[A.Stmt]) -> None:
    """Assign sequential ``stmt_id``s across the whole function body."""
    counter = 0

    def visit(stmt: A.Stmt) -> None:
        nonlocal counter
        stmt.stmt_id = counter
        counter += 1
        if isinstance(stmt, A.Block):
            for s in stmt.body:
                visit(s)
        elif isinstance(stmt, A.If):
            visit(stmt.then)
            if stmt.other is not None:
                visit(stmt.other)
        elif isinstance(stmt, A.While):
            for s in stmt.cond_pre:
                visit(s)
            visit(stmt.body)
        elif isinstance(stmt, A.DoWhile):
            visit(stmt.body)
            for s in stmt.cond_pre:
                visit(s)
        elif isinstance(stmt, A.For):
            for s in stmt.init_stmts:
                visit(s)
            for s in stmt.cond_pre:
                visit(s)
            visit(stmt.body)
            for s in stmt.step_stmts:
                visit(s)
        elif isinstance(stmt, A.Switch):
            for case in stmt.cases:
                for s in case.body:
                    visit(s)

    for stmt in body:
        visit(stmt)


def normalize_function(func: A.FuncDef) -> NormFunc:
    """Normalize one type-checked function definition."""
    return _Normalizer(func).run()
