"""The stack-machine instruction set.

Each function compiles to a flat list of instructions ``(op, a, b)``.
Instructions come in two flavours:

- **neutral** — produced once per program by the compiler; operands may be
  symbolic (variable indices, C types, primitive kinds);
- **specialized** — produced per architecture by
  :meth:`repro.vm.program.CompiledProgram.for_arch`; all operands are
  concrete (byte offsets, absolute addresses, wrap masks).

Crucially, specialization never changes the *number or order* of
instructions, so a program counter is meaningful on every host — that is
the property that lets execution state (a stack of ``(function, pc)``
pairs) migrate between architectures, mirroring the paper's requirement
that the same annotated source is compiled on every machine.

Resumability invariants enforced by the compiler (see
:mod:`repro.vm.normalize`):

- at every ``POLL`` the evaluation stack is empty;
- at every ``CALL`` the caller's evaluation stack is empty once the
  arguments have been popped.

Together these mean a frame's complete state is ``(function, pc)`` plus
the contents of its activation record in simulated memory — which the MSR
layer collects and restores like any other memory.
"""

from __future__ import annotations

from typing import Final

__all__ = ["Op", "OP_NAMES", "Instr", "format_instr"]


class Op:
    """Opcode constants (plain ints for dispatch speed)."""

    NOP = 0
    # constants / addresses
    PUSH = 1          # a = python constant (int/float); push it
    PUSH_SIZEOF = 2   # neutral only: a = CType; specializes to PUSH
    LEA_L = 3         # neutral a = local var index; spec a = frame offset
    LEA_G = 4         # neutral a = global var index; spec a = absolute addr
    # fused direct variable access (gives the liveness analysis its use/def)
    LDL = 5           # neutral a = (var idx, kind); spec a = (offset, kind)
    STL = 6           # neutral a = (var idx, kind); spec a = (offset, kind)
    LDG = 7           # neutral a = (global idx, kind); spec a = (addr, kind)
    STG = 8           # neutral a = (global idx, kind); spec a = (addr, kind)
    # memory through pointers
    LOAD = 9          # a = kind; pop addr, push value
    STORE = 10        # a = kind; pop addr, pop value, write value
    # arithmetic: a = None for float, else (mask, signbit) wrap spec
    ADD = 11
    SUB = 12
    MUL = 13
    DIV = 14          # C truncating division for ints
    MOD = 15          # int only
    NEG = 16
    BAND = 17
    BOR = 18
    BXOR = 19
    BNOT = 20
    SHL = 21
    SHR = 22
    # comparisons (operands already carry correct signedness): push 0/1
    EQ = 23
    NE = 24
    LT = 25
    LE = 26
    GT = 27
    GE = 28
    LNOT = 29
    # conversions: neutral a = (from_kind, to_kind);
    # spec a = ("f",) | ("i", mask, signbit) | ("b",) for bool-ish
    CVT = 30
    # pointer arithmetic: neutral a = elem CType; spec a = elem size
    PTRADD = 31       # pop int i, pop ptr p, push p + i*size
    PTRSUB = 32       # pop int i, pop ptr p, push p - i*size
    PTRDIFF = 33      # pop ptr q, pop ptr p, push (p - q) // size
    # control flow
    JMP = 34          # a = target pc
    JZ = 35
    JNZ = 36
    CALL = 37         # a = function index, b = nargs
    CALLB = 38        # a = builtin index, b = (nargs, extra) — extra is the
                      # type id for typed malloc, else None
    RET = 39          # a = 1 if a value is returned
    POLL = 40         # a = poll-point id (unique per program)
    HALT = 41
    # stack manipulation
    POP = 42
    DUP = 43
    # struct member addressing: neutral a = (StructType, field name);
    # spec a = byte offset — pops an address, pushes address + offset
    OFFSET = 44
    # struct assignment by value: neutral a = StructType; spec a = size —
    # pops destination address, pops source address, copies size bytes
    COPYBLK = 45


OP_NAMES: Final[dict[int, str]] = {
    value: name for name, value in vars(Op).items() if not name.startswith("_")
}

#: An instruction is a plain tuple for dispatch speed.
Instr = tuple


def format_instr(instr: Instr) -> str:
    """Human-readable rendering of one instruction (debugging aid)."""
    op, a, b = instr
    name = OP_NAMES.get(op, f"op{op}")
    parts = [name]
    if a is not None:
        parts.append(repr(a))
    if b is not None:
        parts.append(repr(b))
    return " ".join(parts)
