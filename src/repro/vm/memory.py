"""Segmented byte-addressable simulated memory.

One :class:`Memory` instance is the address space of one simulated process.
It has the three segments the paper's Figure 1 shows — global, heap, and
stack — at the base addresses given by the host's
:class:`~repro.arch.machine.MachineArch`.  All multi-byte values are stored
with the host's byte order and sizes, so the bytes in this memory are
genuinely architecture-specific: migrating them to a host with different
endianness without conversion would corrupt every value, which is exactly
the problem the paper's XDR/TI machinery solves.

Segments are *windowed*: only the touched address range is materialized
(a stack that lives at the top of a 128 MiB segment costs kilobytes, not
the whole segment).  A simple first-fit-by-size-class allocator backs
``malloc``/``free``.  Bulk array access is exposed through NumPy views
(vectorized hot path for large matrices, per the HPC guides).
"""

from __future__ import annotations

import struct
from typing import Final

import numpy as np

from repro.arch.machine import MachineArch

__all__ = ["Memory", "MemoryFault", "Segment"]


class MemoryFault(Exception):
    """Invalid simulated memory access (the equivalent of SIGSEGV)."""


_STRUCT_CODE: Final[dict[str, str]] = {
    "char": "b",  # signedness of plain char fixed up per arch in __init__
    "uchar": "B",
    "short": "h",
    "ushort": "H",
    "int": "i",
    "uint": "I",
    "llong": "q",
    "ullong": "Q",
    "float": "f",
    "double": "d",
}

_NP_CODE: Final[dict[str, str]] = {
    "char": "i1",
    "uchar": "u1",
    "short": "i2",
    "ushort": "u2",
    "int": "i4",
    "uint": "u4",
    "llong": "i8",
    "ullong": "u8",
    "float": "f4",
    "double": "f8",
}

#: heap allocation granularity / alignment
_HEAP_ALIGN = 8
#: window growth slack (amortizes repeated extension)
_SLACK = 65536


class Segment:
    """One address range, backed by a window over the touched sub-range.

    ``window_start`` is the absolute address of ``buf[0]``.  The window
    grows in either direction on demand (stacks grow down, heaps up).
    """

    __slots__ = ("name", "base", "limit", "window_start", "buf")

    def __init__(self, name: str, base: int, size: int) -> None:
        self.name = name
        self.base = base
        self.limit = base + size
        self.window_start = base
        self.buf = bytearray()

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.limit

    def ensure(self, addr: int, n: int) -> int:
        """Materialize ``[addr, addr+n)``; return the buffer offset of *addr*."""
        end = addr + n
        if addr < self.base or end > self.limit:
            raise MemoryFault(
                f"access [{addr:#x}, {end:#x}) outside segment {self.name} "
                f"[{self.base:#x}, {self.limit:#x})"
            )
        ws = self.window_start
        we = ws + len(self.buf)
        if not self.buf:
            start = max(self.base, addr - _SLACK if self.name == "stack" else addr)
            stop = min(self.limit, end + _SLACK)
            self.window_start = start
            self.buf = bytearray(stop - start)
        else:
            if addr < ws:
                start = max(self.base, addr - _SLACK)
                self.buf[:0] = bytes(ws - start)
                self.window_start = start
            if end > we:
                stop = min(self.limit, max(end, we + len(self.buf)) + _SLACK)
                self.buf += bytes(stop - we)
        return addr - self.window_start

    def offset(self, addr: int, n: int) -> int:
        """Buffer offset of *addr* when ``[addr, addr+n)`` is materialized,
        else materialize it first."""
        off = addr - self.window_start
        if off >= 0 and off + n <= len(self.buf):
            return off
        return self.ensure(addr, n)

    def write(self, addr: int, data) -> None:
        """Write *data* at *addr*, materializing the window from the data
        itself when the span isn't covered yet: only the gap around the
        write is zero-filled, never the span — a bulk restore into fresh
        memory costs one copy instead of memset-then-copy."""
        n = len(data)
        buf = self.buf
        off = addr - self.window_start
        if 0 <= off and off + n <= len(buf):
            buf[off : off + n] = data
            return
        end = addr + n
        if addr < self.base or end > self.limit:
            raise MemoryFault(
                f"access [{addr:#x}, {end:#x}) outside segment {self.name} "
                f"[{self.base:#x}, {self.limit:#x})"
            )
        if not buf:
            # build the window by concatenation: zero-fill only the slack
            # below the write, then append the data itself.  This touches
            # the data span exactly once (presize-then-splice memsets the
            # whole span first, doubling memory traffic for a multi-MB
            # bulk restore); later growth goes through the append branch,
            # which resizes once per write
            start = max(self.base, addr - _SLACK if self.name == "stack" else addr)
            new = bytearray(addr - start)
            new += data
            self.window_start = start
            self.buf = new
            return
        ws = self.window_start
        if addr < ws:
            start = max(self.base, addr - _SLACK)
            buf[:0] = bytes(ws - start)
            self.window_start = ws = start
        we = ws + len(buf)
        if end <= we:
            buf[addr - ws : addr - ws + n] = data
        elif addr >= we:
            # one resize (gap + data + slack), then splice the data in
            stop = min(self.limit, end + _SLACK)
            buf += bytes(stop - we)
            buf[addr - ws : addr - ws + n] = data
        else:
            head = we - addr  # overlapped prefix inside the window
            buf[addr - ws :] = data[:head]
            buf += data[head:]


class Memory:
    """The simulated address space of one process on one architecture."""

    def __init__(self, arch: MachineArch) -> None:
        self.arch = arch
        segs = arch.segments()
        gbase, gsize = segs["global"]
        hbase, hsize = segs["heap"]
        sbase, ssize = segs["stack"]
        self.global_seg = Segment("global", gbase, gsize)
        self.heap_seg = Segment("heap", hbase, hsize)
        self.stack_seg = Segment("stack", sbase, ssize)
        self._segments = (self.stack_seg, self.heap_seg, self.global_seg)

        # stack pointer starts at the top of the stack segment, grows down
        self.sp = self.stack_seg.limit
        # heap bump pointer and size-class free lists
        self._heap_brk = hbase
        self._free: dict[int, list[int]] = {}
        #: live heap allocations: addr -> padded size
        self.heap_allocs: dict[int, int] = {}
        # global segment bump pointer (used by ad-hoc tests; the loader
        # normally computes global addresses statically)
        self._global_brk = gbase

        order = "<" if arch.byteorder == "little" else ">"
        codes = dict(_STRUCT_CODE)
        codes["char"] = "b" if arch.char_signed else "B"
        codes["long"] = "q" if arch.long_size == 8 else "i"
        codes["ulong"] = "Q" if arch.long_size == 8 else "I"
        codes["ptr"] = "Q" if arch.ptr_size == 8 else "I"
        self._packers: dict[str, struct.Struct] = {
            kind: struct.Struct(order + code) for kind, code in codes.items()
        }
        np_codes = dict(_NP_CODE)
        np_codes["char"] = "i1" if arch.char_signed else "u1"
        np_codes["long"] = "i8" if arch.long_size == 8 else "i4"
        np_codes["ulong"] = "u8" if arch.long_size == 8 else "u4"
        np_codes["ptr"] = "u8" if arch.ptr_size == 8 else "u4"
        self._np_dtypes: dict[str, np.dtype] = {
            kind: np.dtype(order + code) for kind, code in np_codes.items()
        }

        #: pre-copy write barrier: when a DirtyTracker is installed here,
        #: every mutating entry point reports its written byte range.
        #: None (the default) keeps the store paths barrier-free.
        self.dirty = None

    # -- address translation -------------------------------------------------

    def segment_of(self, addr: int) -> Segment:
        """The segment containing *addr* (raises :class:`MemoryFault`)."""
        for seg in self._segments:
            if seg.base <= addr < seg.limit:
                return seg
        if addr == 0:
            raise MemoryFault("NULL pointer dereference")
        raise MemoryFault(f"address {addr:#x} is outside every segment")

    def segment_name(self, addr: int) -> str:
        """Name of the segment containing *addr*."""
        return self.segment_of(addr).name

    # -- scalar access ----------------------------------------------------------

    def load(self, kind: str, addr: int) -> int | float:
        """Read one primitive of *kind* at *addr* (host byte order/width)."""
        packer = self._packers[kind]
        seg = self.segment_of(addr)
        off = seg.offset(addr, packer.size)
        return packer.unpack_from(seg.buf, off)[0]

    def store(self, kind: str, addr: int, value: int | float) -> None:
        """Write one primitive of *kind* at *addr* (wraps integers to width)."""
        packer = self._packers[kind]
        seg = self.segment_of(addr)
        off = seg.offset(addr, packer.size)
        if self.dirty is not None:
            self.dirty.mark(addr, packer.size)
        if kind not in ("float", "double"):
            bits = packer.size * 8
            iv = int(value) & ((1 << bits) - 1)
            if packer.format[-1:].islower() and iv >= 1 << (bits - 1):
                iv -= 1 << bits
            packer.pack_into(seg.buf, off, iv)
        else:
            packer.pack_into(seg.buf, off, value)

    def sizeof(self, kind: str) -> int:
        """Host size of primitive *kind* (convenience forwarding)."""
        return self._packers[kind].size

    # -- bulk access -------------------------------------------------------------

    def read_bytes(self, addr: int, n: int) -> bytes:
        """Copy *n* raw bytes starting at *addr*."""
        seg = self.segment_of(addr)
        off = seg.offset(addr, n)
        return bytes(seg.buf[off : off + n])

    def write_bytes(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        """Write raw bytes at *addr* (materializes from the data itself
        when the span is fresh — see :meth:`Segment.write`)."""
        if self.dirty is not None:
            self.dirty.mark(addr, len(data))
        self.segment_of(addr).write(addr, data)

    def view(self, addr: int, n: int) -> memoryview:
        """Zero-copy view of *n* bytes at *addr* (valid until the segment
        window grows)."""
        seg = self.segment_of(addr)
        off = seg.offset(addr, n)
        return memoryview(seg.buf)[off : off + n]

    def write_view(self, addr: int, n: int) -> memoryview:
        """Writable view of ``[addr, addr+n)``, materializing the span
        if needed — bulk restores fill it straight from the wire with no
        intermediate buffer (same validity rule as :meth:`view`)."""
        seg = self.segment_of(addr)
        off = seg.offset(addr, n)
        if self.dirty is not None:
            self.dirty.mark(addr, n)
        return memoryview(seg.buf)[off : off + n]

    def read_array(self, kind: str, addr: int, count: int) -> np.ndarray:
        """Vectorized read of *count* primitives of *kind* starting at *addr*."""
        dtype = self._np_dtypes[kind]
        raw = self.view(addr, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_array(self, kind: str, addr: int, values: np.ndarray) -> None:
        """Vectorized write of primitives of *kind* starting at *addr*."""
        dtype = self._np_dtypes[kind]
        arr = np.asarray(values)
        if arr.dtype != dtype:
            arr = arr.astype(dtype, casting="unsafe")
        self.write_bytes(addr, arr.tobytes())

    def np_dtype(self, kind: str) -> np.dtype:
        """Host-byte-order NumPy dtype for primitive *kind*."""
        return self._np_dtypes[kind]

    def zero(self, addr: int, n: int) -> None:
        """Zero *n* bytes at *addr*.

        Window materialization already yields zero bytes, so only the
        overlap with the previously-materialized window needs an
        explicit wipe — zeroing a fresh range (globals at load, frame
        pushes, heap carves) writes nothing at all and leaves the range
        unmaterialized; it reads as zeros whenever the window later
        grows over it."""
        if n <= 0:
            return
        if self.dirty is not None:
            # zeroing is a semantic write even when it leaves the range
            # unmaterialized (the bytes change from "whatever was live"
            # to zero as far as any later reader is concerned)
            self.dirty.mark(addr, n)
        seg = self.segment_of(addr)
        end = addr + n
        if end > seg.limit:
            raise MemoryFault(
                f"access [{addr:#x}, {end:#x}) outside segment {seg.name} "
                f"[{seg.base:#x}, {seg.limit:#x})"
            )
        lo = max(addr, seg.window_start)
        hi = min(end, seg.window_start + len(seg.buf))
        if lo < hi:
            off = lo - seg.window_start
            seg.buf[off : off + (hi - lo)] = bytes(hi - lo)

    # -- global segment loader --------------------------------------------------

    def global_alloc(self, size: int, align: int = 1) -> int:
        """Reserve *size* bytes in the global segment (ad-hoc use)."""
        addr = _align_up(self._global_brk, align)
        self.global_seg.ensure(addr, size)
        self._global_brk = addr + size
        return addr

    # -- stack -------------------------------------------------------------------

    def stack_alloc(self, size: int, align: int = 8) -> int:
        """Push an activation record of *size* bytes; returns its base.

        Materialization is deferred to the first access (usually the
        caller's ``zero``): a frame in never-touched stack space then
        costs one window growth and no wipe, while a reused region —
        already inside the window — still gets explicitly zeroed."""
        new_sp = (self.sp - size) & ~(align - 1)
        if new_sp < self.stack_seg.base:
            raise MemoryFault("simulated stack overflow")
        self.sp = new_sp
        return new_sp

    def stack_restore(self, sp: int) -> None:
        """Pop back to a previously saved stack pointer."""
        if not (self.stack_seg.base <= sp <= self.stack_seg.limit):
            raise MemoryFault(f"bad stack pointer {sp:#x}")
        self.sp = sp

    # -- heap --------------------------------------------------------------------

    def heap_alloc(self, size: int) -> int:
        """``malloc``: returns an 8-aligned address; size 0 behaves as 1."""
        size = _align_up(max(size, 1), _HEAP_ALIGN)
        bucket = self._free.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self._heap_brk
            end = addr + size
            if end > self.heap_seg.limit:
                raise MemoryFault("simulated heap exhausted")
            self.heap_seg.ensure(addr, size)
            self._heap_brk = end
        self.heap_allocs[addr] = size
        return addr

    def heap_alloc_bulk(self, size: int, n: int) -> tuple[int, int] | None:
        """``n`` identical ``malloc(size)`` calls carved contiguously off
        the brk in one step; returns ``(base, stride)``.

        Returns ``None`` when the size-class free list is non-empty: the
        per-allocation path would recycle those addresses first, and the
        graph plan must produce *exactly* the addresses the reference
        path would (address parity is what keeps re-collection after a
        restore byte-identical), so it declines instead of guessing.
        """
        stride = _align_up(max(size, 1), _HEAP_ALIGN)
        if n <= 0:
            raise ValueError(f"bulk allocation count must be positive, got {n}")
        if self._free.get(stride):
            return None
        base = self._heap_brk
        end = base + stride * n
        if end > self.heap_seg.limit:
            raise MemoryFault("simulated heap exhausted")
        # materialization is deferred to the first write: the bulk
        # restore that follows builds the window straight from its data
        # (Segment.write), so an eager ensure here would memset bytes
        # that are about to be overwritten wholesale
        self._heap_brk = end
        allocs = self.heap_allocs
        for k in range(n):
            allocs[base + k * stride] = stride
        return base, stride

    def array_view(self, kind: str, addr: int, count: int) -> np.ndarray:
        """Writable zero-copy ndarray over *count* primitives at *addr*.

        The view pins the segment's backing ``bytearray``: hold it only
        transiently (create, read/assign, drop) — any segment window
        growth while a view is alive raises ``BufferError``.
        """
        dtype = self._np_dtypes[kind]
        seg = self.segment_of(addr)
        nbytes = count * dtype.itemsize
        off = seg.offset(addr, nbytes)
        if self.dirty is not None:
            # the view is writable, so conservatively treat the whole
            # span as dirtied (read-only callers over-mark a little)
            self.dirty.mark(addr, nbytes)
        return np.frombuffer(seg.buf, dtype=dtype, count=count, offset=off)

    def heap_free(self, addr: int) -> None:
        """``free``: recycle an allocation (NULL is a no-op, as in C)."""
        if addr == 0:
            return
        size = self.heap_allocs.pop(addr, None)
        if size is None:
            raise MemoryFault(f"free of non-allocated address {addr:#x}")
        self._free.setdefault(size, []).append(addr)

    def heap_size_of(self, addr: int) -> int:
        """Padded size of the live heap allocation at *addr*."""
        try:
            return self.heap_allocs[addr]
        except KeyError:
            raise MemoryFault(f"{addr:#x} is not a live heap allocation") from None

    # -- statistics ----------------------------------------------------------------

    def footprint(self) -> dict[str, int]:
        """Materialized window bytes per segment (for reporting)."""
        return {
            "global": len(self.global_seg.buf),
            "heap": len(self.heap_seg.buf),
            "stack": len(self.stack_seg.buf),
        }


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
