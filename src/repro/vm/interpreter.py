"""The stack-VM executor.

A threaded interpreter over specialized instructions.  Two invariants
from :mod:`repro.vm.normalize` are asserted at runtime (they are what
makes frames migratable):

- the evaluation stack is empty at every ``POLL``;
- the caller's evaluation stack is empty at every ``CALL`` once the
  arguments are popped.

``POLL`` instructions implement the paper's poll-points: each execution
increments the poll counter (the §4.3 overhead source) and, when the
scheduler has posted a migration request, execution stops *at* the poll
point with every frame's ``pc`` already at its resume position.

Performance notes (profile-guided, per the HPC guides): the dispatch
chain is ordered by measured dynamic opcode frequency (LDL ≫ PTRADD >
ADD > PUSH > LOAD > STL …), and the variable/pointer memory accesses are
inlined against the segment windows, falling back to
:meth:`repro.vm.memory.Memory.load`/``store`` only when a window must
grow.  Semantics are identical to the Memory methods: the fast store
path relies on eval-stack values already being wrapped to their kind
(the compiler guarantees it) and falls back on ``struct.error``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.vm.builtins import BUILTINS
from repro.clang.ctypes import VoidType
from repro.vm.ir import Op, format_instr

__all__ = ["Frame", "RunResult", "Interpreter", "VMError"]


class VMError(Exception):
    """Internal VM invariant violation or illegal program behaviour."""


_BUILTIN_HANDLERS = tuple(b.handler for b in BUILTINS)
_BUILTIN_HAS_RET = tuple(not isinstance(b.sig.ret, VoidType) for b in BUILTINS)


class Frame:
    """One activation record: function, program counter, eval stack, and
    the base address of its locals in simulated stack memory."""

    __slots__ = ("func_idx", "image", "pc", "base", "saved_sp", "stack")

    def __init__(self, func_idx: int, image, base: int, saved_sp: int) -> None:
        self.func_idx = func_idx
        self.image = image  # FuncImage
        self.pc = 0
        self.base = base
        self.saved_sp = saved_sp
        self.stack: list = []


@dataclass
class RunResult:
    """Outcome of one :meth:`Interpreter.run` call."""

    status: str  # "exit" | "poll" | "steps"
    exit_code: int = 0
    poll_id: int = -1


class Interpreter:
    """Executes a process's frames until exit, poll, or step budget."""

    def __init__(self, process) -> None:
        self.process = process

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        proc = self.process
        frames = proc.frames
        memory = proc.memory
        load = memory.load
        store = memory.store
        steps = 0
        budget = max_steps if max_steps is not None else -1

        # fast-path bindings: unpack/pack functions and sizes per kind,
        # plus the three segment objects for inline window access
        unp = {k: (p.unpack_from, p.size) for k, p in memory._packers.items()}
        pck = {k: (p.pack_into, p.size) for k, p in memory._packers.items()}
        sseg = memory.stack_seg
        hseg = memory.heap_seg
        gseg = memory.global_seg
        sbase, slimit = sseg.base, sseg.limit
        hbase, hlimit = hseg.base, hseg.limit

        if not frames:
            raise VMError("no frames to run")
        frame = frames[-1]
        code = frame.image.code
        stack = frame.stack
        base = frame.base
        pc = frame.pc

        while True:
            if budget >= 0 and steps >= budget:
                frame.pc = pc
                proc.steps += steps
                return RunResult(status="steps")
            steps += 1

            op, a, b = code[pc]
            pc += 1

            if op == Op.LDL:
                addr = base + a
                up, size = unp[b]
                off = addr - sseg.window_start
                buf = sseg.buf
                if 0 <= off and off + size <= len(buf):
                    stack.append(up(buf, off)[0])
                else:
                    stack.append(load(b, addr))
            elif op == Op.PTRADD:
                i = stack.pop()
                stack.append(stack.pop() + int(i) * a)
            elif op == Op.ADD:
                r = stack.pop()
                l = stack.pop()
                if a is None:
                    stack.append(l + r)
                else:
                    v = (l + r) & a[0]
                    stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.PUSH:
                stack.append(a)
            elif op == Op.LOAD:
                addr = stack.pop()
                if sbase <= addr < slimit:
                    seg = sseg
                elif hbase <= addr < hlimit:
                    seg = hseg
                else:
                    seg = gseg
                up, size = unp[a]
                off = addr - seg.window_start
                buf = seg.buf
                if 0 <= off and off + size <= len(buf) and seg.base <= addr:
                    stack.append(up(buf, off)[0])
                else:
                    stack.append(load(a, addr))
            elif op == Op.STL:
                addr = base + a
                pk, size = pck[b]
                off = addr - sseg.window_start
                buf = sseg.buf
                value = stack.pop()
                if 0 <= off and off + size <= len(buf):
                    try:
                        pk(buf, off, value)
                    except struct.error:
                        # out-of-range value: delegate to the wrapping path
                        store(b, addr, value)
                else:
                    store(b, addr, value)
            elif op == Op.MUL:
                r = stack.pop()
                l = stack.pop()
                if a is None:
                    stack.append(l * r)
                else:
                    v = (l * r) & a[0]
                    stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.JZ:
                if not stack.pop():
                    pc = a
            elif op == Op.LT:
                r = stack.pop()
                stack.append(1 if stack.pop() < r else 0)
            elif op == Op.JMP:
                pc = a
            elif op == Op.STORE:
                addr = stack.pop()
                store(a, addr, stack.pop())
            elif op == Op.SUB:
                r = stack.pop()
                l = stack.pop()
                if a is None:
                    stack.append(l - r)
                else:
                    v = (l - r) & a[0]
                    stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.LEA_L:
                stack.append(base + a)
            elif op == Op.LDG:
                up, size = unp[b]
                off = a - gseg.window_start
                buf = gseg.buf
                if 0 <= off and off + size <= len(buf):
                    stack.append(up(buf, off)[0])
                else:
                    stack.append(load(b, a))
            elif op == Op.STG:
                store(b, a, stack.pop())
            elif op == Op.PTRSUB:
                i = stack.pop()
                stack.append(stack.pop() - int(i) * a)
            elif op == Op.PTRDIFF:
                q = stack.pop()
                p = stack.pop()
                stack.append((p - q) // a)
            elif op == Op.OFFSET:
                stack.append(stack.pop() + a)
            elif op == Op.DIV:
                r = stack.pop()
                l = stack.pop()
                if a is None:
                    stack.append(l / r if r != 0.0 else _float_div_zero(l, r))
                else:
                    if r == 0:
                        raise VMError("integer division by zero")
                    q = abs(l) // abs(r)
                    if (l < 0) != (r < 0):
                        q = -q
                    v = q & a[0]
                    stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.MOD:
                r = stack.pop()
                l = stack.pop()
                if r == 0:
                    raise VMError("integer modulo by zero")
                q = abs(l) // abs(r)
                if (l < 0) != (r < 0):
                    q = -q
                v = (l - q * r) & a[0]
                stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.EQ:
                r = stack.pop()
                stack.append(1 if stack.pop() == r else 0)
            elif op == Op.NE:
                r = stack.pop()
                stack.append(1 if stack.pop() != r else 0)
            elif op == Op.LE:
                r = stack.pop()
                stack.append(1 if stack.pop() <= r else 0)
            elif op == Op.GT:
                r = stack.pop()
                stack.append(1 if stack.pop() > r else 0)
            elif op == Op.GE:
                r = stack.pop()
                stack.append(1 if stack.pop() >= r else 0)
            elif op == Op.LNOT:
                stack.append(0 if stack.pop() else 1)
            elif op == Op.NEG:
                v = stack.pop()
                if a is None:
                    stack.append(-v)
                else:
                    v = (-v) & a[0]
                    stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.BAND:
                r = stack.pop()
                v = (stack.pop() & r) & a[0]
                stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.BOR:
                r = stack.pop()
                v = (stack.pop() | r) & a[0]
                stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.BXOR:
                r = stack.pop()
                v = (stack.pop() ^ r) & a[0]
                stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.BNOT:
                v = (~stack.pop()) & a[0]
                stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.SHL:
                r = stack.pop()
                v = (stack.pop() << (r & 63)) & a[0]
                stack.append(v - a[0] - 1 if a[1] and v >= a[1] else v)
            elif op == Op.SHR:
                r = stack.pop()
                stack.append(stack.pop() >> (r & 63))
            elif op == Op.CVT:
                v = stack.pop()
                if a[0] == "f":
                    stack.append(float(v))
                else:
                    iv = int(v) & a[1]
                    stack.append(iv - a[1] - 1 if a[2] and iv >= a[2] else iv)
            elif op == Op.JNZ:
                if stack.pop():
                    pc = a
            elif op == Op.CALL:
                args = stack[len(stack) - b :] if b else []
                if b:
                    del stack[len(stack) - b :]
                if stack:
                    raise VMError(
                        f"eval stack not empty at CALL in {frame.image.name} "
                        f"(pc {pc - 1}) — normalization invariant broken"
                    )
                frame.pc = pc
                frame = proc.push_frame(a, args)
                code = frame.image.code
                stack = frame.stack
                base = frame.base
                pc = 0
            elif op == Op.CALLB:
                nargs, extra = b
                args = stack[len(stack) - nargs :] if nargs else []
                if nargs:
                    del stack[len(stack) - nargs :]
                result = _BUILTIN_HANDLERS[a](proc, args, extra)
                if _BUILTIN_HAS_RET[a]:
                    stack.append(result)
            elif op == Op.RET:
                value = stack.pop() if a else None
                memory.stack_restore(frame.saved_sp)
                frames.pop()
                if not frames:
                    proc.steps += steps
                    return RunResult(status="exit", exit_code=int(value or 0))
                frame = frames[-1]
                code = frame.image.code
                stack = frame.stack
                base = frame.base
                pc = frame.pc
                if a:
                    stack.append(value)
            elif op == Op.POLL:
                proc.polls += 1
                if stack:
                    raise VMError(
                        f"eval stack not empty at POLL in {frame.image.name}"
                    )
                if proc.migration_pending and proc.should_migrate_at(a):
                    frame.pc = pc  # resume position: instruction after POLL
                    proc.steps += steps
                    return RunResult(status="poll", poll_id=a)
            elif op == Op.COPYBLK:
                dst = stack.pop()
                src = stack.pop()
                memory.write_bytes(dst, memory.read_bytes(src, a))
            elif op == Op.POP:
                stack.pop()
            elif op == Op.DUP:
                stack.append(stack[-1])
            elif op == Op.NOP:
                pass
            else:  # pragma: no cover - defensive
                raise VMError(f"bad opcode: {format_instr((op, a, b))}")


def _float_div_zero(l: float, r: float) -> float:
    """IEEE 754 semantics for float division by (possibly signed) zero."""
    import math

    if l == 0.0 or l != l:
        return float("nan")
    sign = math.copysign(1.0, l) * math.copysign(1.0, r)
    return float("inf") if sign > 0 else float("-inf")
