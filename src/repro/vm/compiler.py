"""IR generation: normalized, type-checked AST → neutral stack-VM code.

One :class:`FuncIR` per function.  The generator is deterministic, so the
same source compiles to the same instruction sequence on every host —
only operand *values* differ after per-architecture specialization
(:mod:`repro.vm.program`), never instruction count or order.  That is the
property the paper relies on when it assumes the annotated source has
been pre-distributed and compiled on all potential destinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.liveness import LivenessResult
from repro.clang import cast as A
from repro.clang.ctypes import (
    ArrayType,
    CType,
    PointerType,
    PrimType,
    StructType,
    UCHAR,
    VoidType,
    type_key,
)
from repro.vm.ir import Instr, Op
from repro.vm.normalize import NormFunc, VarInfo

__all__ = ["CompileError", "FuncIR", "GlobalInfo", "IRGen", "kind_of"]


class CompileError(Exception):
    """IR generation failure (constructs the VM cannot express)."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


def kind_of(ctype: CType) -> str:
    """The primitive kind used to move a value of *ctype* through the VM."""
    if isinstance(ctype, PrimType):
        return ctype.kind
    if isinstance(ctype, PointerType):
        return "ptr"
    raise CompileError(f"type {ctype} is not a register value")


@dataclass
class GlobalInfo:
    """One global memory object (program variable or string literal)."""

    name: str
    ctype: CType
    #: scalar constant initializer (python value) or None
    init: Optional[float | int] = None
    #: array element initializers (python values) or None
    init_list: Optional[list[float | int]] = None
    #: raw byte initializer (string literals)
    init_bytes: Optional[bytes] = None
    is_string: bool = False
    #: hidden runtime state (e.g. the PRNG cell) — migrates like any global
    is_hidden: bool = False


@dataclass
class FuncIR:
    """Compiled form of one function."""

    name: str
    norm: NormFunc
    code: list[Instr] = field(default_factory=list)
    #: poll id -> pc of the POLL instruction
    poll_pcs: dict[int, int] = field(default_factory=dict)
    #: pcs of CALL instructions (to user functions)
    call_pcs: list[int] = field(default_factory=list)
    #: filled in by the program builder
    liveness: Optional[LivenessResult] = None
    #: stmt_id -> first pc (for the annotator's labels)
    stmt_pc: dict[int, int] = field(default_factory=dict)
    #: stmt_id of each PollHint -> its program-wide poll id (annotator)
    poll_stmts: dict[int, int] = field(default_factory=dict)

    @property
    def nvars(self) -> int:
        return len(self.norm.variables)


class IRGen:
    """Generates neutral IR for one function.

    The *program* object supplies cross-function context and must provide:
    ``func_index(name)``, ``global_index(name)``, ``intern_string(s)``,
    ``builtin_index(name)``, ``builtin_ret(name)``, ``register_type(t)``,
    ``next_poll_id()``, ``function_ret(name)``.
    """

    def __init__(self, program, norm: NormFunc) -> None:
        self.program = program
        self.norm = norm
        self.fir = FuncIR(name=norm.name, norm=norm)
        self.code = self.fir.code
        # (break_patches, continue_patches, continue_target_or_None) stack
        self._loops: list[tuple[list[int], list[int], Optional[int]]] = []

    # -- emission helpers ------------------------------------------------------

    def emit(self, op: int, a=None, b=None) -> int:
        self.code.append((op, a, b))
        return len(self.code) - 1

    def _patch(self, pc: int, target: int) -> None:
        op, _a, b = self.code[pc]
        self.code[pc] = (op, target, b)

    def here(self) -> int:
        return len(self.code)

    # -- entry -------------------------------------------------------------------

    def run(self) -> FuncIR:
        for stmt in self.norm.body:
            self.stmt(stmt)
        # implicit return (falls off the end)
        self.emit(Op.RET, 0, None)
        return self.fir

    # -- statements -----------------------------------------------------------------

    def stmt(self, stmt: A.Stmt) -> None:
        if stmt.stmt_id >= 0 and stmt.stmt_id not in self.fir.stmt_pc:
            self.fir.stmt_pc[stmt.stmt_id] = self.here()

        if isinstance(stmt, A.Block):
            for s in stmt.body:
                self.stmt(s)
            return

        if isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, A.Assign):
                self.assign(expr)
            elif isinstance(expr, A.Call):
                self.call(expr, want_value=False)
            else:  # pure expression statement: no effect, emit nothing
                pass
            return

        if isinstance(stmt, A.PollHint):
            poll_id = self.program.next_poll_id()
            pc = self.emit(Op.POLL, poll_id, None)
            self.fir.poll_pcs[poll_id] = pc
            self.fir.poll_stmts[stmt.stmt_id] = poll_id
            return

        if isinstance(stmt, A.If):
            self.rvalue(stmt.cond)
            jz = self.emit(Op.JZ, None, None)
            self.stmt(stmt.then)
            if stmt.other is not None:
                jend = self.emit(Op.JMP, None, None)
                self._patch(jz, self.here())
                self.stmt(stmt.other)
                self._patch(jend, self.here())
            else:
                self._patch(jz, self.here())
            return

        if isinstance(stmt, A.While):
            top = self.here()
            for s in stmt.cond_pre:
                self.stmt(s)
            self.rvalue(stmt.cond)
            jz = self.emit(Op.JZ, None, None)
            breaks: list[int] = []
            continues: list[int] = []
            self._loops.append((breaks, continues, top))
            self.stmt(stmt.body)
            self._loops.pop()
            self.emit(Op.JMP, top, None)
            end = self.here()
            self._patch(jz, end)
            for pc in breaks:
                self._patch(pc, end)
            for pc in continues:
                self._patch(pc, top)
            return

        if isinstance(stmt, A.DoWhile):
            top = self.here()
            breaks, continues = [], []
            self._loops.append((breaks, continues, None))
            self.stmt(stmt.body)
            self._loops.pop()
            cond_top = self.here()
            for s in stmt.cond_pre:
                self.stmt(s)
            self.rvalue(stmt.cond)
            self.emit(Op.JNZ, top, None)
            end = self.here()
            for pc in breaks:
                self._patch(pc, end)
            for pc in continues:
                self._patch(pc, cond_top)
            return

        if isinstance(stmt, A.For):
            for s in stmt.init_stmts:
                self.stmt(s)
            top = self.here()
            for s in stmt.cond_pre:
                self.stmt(s)
            jz = None
            if stmt.cond is not None:
                self.rvalue(stmt.cond)
                jz = self.emit(Op.JZ, None, None)
            breaks, continues = [], []
            self._loops.append((breaks, continues, None))
            self.stmt(stmt.body)
            self._loops.pop()
            step_top = self.here()
            for s in stmt.step_stmts:
                self.stmt(s)
            self.emit(Op.JMP, top, None)
            end = self.here()
            if jz is not None:
                self._patch(jz, end)
            for pc in breaks:
                self._patch(pc, end)
            for pc in continues:
                self._patch(pc, step_top)
            return

        if isinstance(stmt, A.Break):
            if not self._loops:
                raise CompileError("break outside loop/switch", stmt.line)
            pc = self.emit(Op.JMP, None, None)
            self._loops[-1][0].append(pc)
            return

        if isinstance(stmt, A.Continue):
            # find the innermost *loop* (switch pushes continues=None)
            for frame in reversed(self._loops):
                if frame[1] is not None:
                    pc = self.emit(Op.JMP, None, None)
                    frame[1].append(pc)
                    return
            raise CompileError("continue outside loop", stmt.line)

        if isinstance(stmt, A.Return):
            if stmt.value is not None:
                if isinstance(stmt.value, A.Call):
                    self.call(stmt.value, want_value=True)
                else:
                    self.rvalue(stmt.value)
                self.emit(Op.RET, 1, None)
            else:
                self.emit(Op.RET, 0, None)
            return

        if isinstance(stmt, A.Switch):
            self.switch(stmt)
            return

        raise CompileError(f"cannot compile statement {type(stmt).__name__}", stmt.line)

    def switch(self, stmt: A.Switch) -> None:
        kind = kind_of(stmt.cond.ctype)
        case_jumps: list[tuple[int, A.SwitchCase]] = []
        default_case: Optional[A.SwitchCase] = None
        for case in stmt.cases:
            if case.value is None:
                default_case = case
                continue
            self.rvalue(stmt.cond)  # pure: safe to re-evaluate
            self.emit(Op.PUSH, case.value, None)
            self.emit(Op.EQ, None, None)
            pc = self.emit(Op.JNZ, None, None)
            case_jumps.append((pc, case))
        jdefault = self.emit(Op.JMP, None, None)
        del kind

        breaks: list[int] = []
        self._loops.append((breaks, None, None))  # switch: break only
        case_starts: dict[int, int] = {}
        for case in stmt.cases:
            case_starts[id(case)] = self.here()
            for s in case.body:
                self.stmt(s)
        self._loops.pop()
        end = self.here()

        for pc, case in case_jumps:
            self._patch(pc, case_starts[id(case)])
        self._patch(jdefault, case_starts[id(default_case)] if default_case else end)
        for pc in breaks:
            self._patch(pc, end)

    # -- assignment --------------------------------------------------------------------

    def assign(self, expr: A.Assign) -> None:
        target = expr.target
        value = expr.value
        if expr.op:
            raise CompileError("compound assignment survived normalization", expr.line)

        # direct store into a named scalar
        if isinstance(target, A.Ident) and not isinstance(target.ctype, StructType):
            ref = self._resolve(target.name)
            scope, idx, ctype = ref
            if ctype.is_scalar:
                self.gen_value(value)
                kind = kind_of(ctype)
                if scope == "local":
                    self.emit(Op.STL, (idx, kind), None)
                else:
                    self.emit(Op.STG, (idx, kind), None)
                return

        # struct assignment by value: copy the whole block
        if isinstance(target.ctype, StructType):
            self.rvalue(value)  # struct rvalue == its address
            self.address_of(target)
            self.emit(Op.COPYBLK, target.ctype, None)
            return

        # general store: value, then address, then STORE
        self.gen_value(value)
        self.address_of(target)
        self.emit(Op.STORE, kind_of(target.ctype), None)

    def gen_value(self, value: A.Expr) -> None:
        """Push the value of *value*, allowing the three call shapes."""
        if isinstance(value, A.Call):
            self.call(value, want_value=True)
        elif isinstance(value, A.Cast) and isinstance(value.operand, A.Call):
            # typed-malloc pattern: (T*)malloc(...) — the cast selects the
            # block element type, the value itself needs no conversion
            self.call(value.operand, want_value=True, cast_to=value.to)
            self._maybe_cvt(value.operand.ctype, value.to)
        else:
            self.rvalue(value)

    def _maybe_cvt(self, frm: CType, to: CType) -> None:
        if isinstance(frm, PrimType) and isinstance(to, PrimType) and frm.kind != to.kind:
            self.emit(Op.CVT, (frm.kind, to.kind), None)

    # -- calls --------------------------------------------------------------------------

    def call(self, call: A.Call, want_value: bool, cast_to: Optional[CType] = None) -> None:
        fidx = self.program.func_index(call.func)
        if fidx is not None:
            for arg in call.args:
                self.rvalue(arg)
            pc = self.emit(Op.CALL, fidx, len(call.args))
            self.fir.call_pcs.append(pc)
            ret = self.program.function_ret(call.func)
            if not want_value and not isinstance(ret, VoidType):
                self.emit(Op.POP, None, None)
            if want_value and isinstance(ret, VoidType):
                raise CompileError(f"void value of {call.func}() used", call.line)
            return

        bidx = self.program.builtin_index(call.func)
        if bidx is None:
            raise CompileError(f"unknown function {call.func!r}", call.line)
        for arg in call.args:
            self.rvalue(arg)
        extra = None
        if call.func in ("malloc", "calloc", "realloc"):
            elem: CType = UCHAR
            if cast_to is not None and isinstance(cast_to, PointerType):
                if not isinstance(cast_to.target, VoidType):
                    elem = cast_to.target
            extra = self.program.register_type(elem)
        self.emit(Op.CALLB, bidx, (len(call.args), extra))
        ret = self.program.builtin_ret(call.func)
        if not want_value and not isinstance(ret, VoidType):
            self.emit(Op.POP, None, None)
        if want_value and isinstance(ret, VoidType):
            raise CompileError(f"void value of builtin {call.func}() used", call.line)

    # -- addresses -----------------------------------------------------------------------

    def _resolve(self, name: str) -> tuple[str, int, CType]:
        idx = self.norm.var_index.get(name)
        if idx is not None:
            return "local", idx, self.norm.variables[idx].ctype
        gidx = self.program.global_index(name)
        if gidx is not None:
            return "global", gidx, self.program.global_ctype(gidx)
        raise CompileError(f"unresolved identifier {name!r}")

    def address_of(self, expr: A.Expr) -> None:
        """Push the address of lvalue *expr*."""
        if isinstance(expr, A.Ident):
            scope, idx, _ctype = self._resolve(expr.name)
            self.emit(Op.LEA_L if scope == "local" else Op.LEA_G, idx, None)
            return
        if isinstance(expr, A.Unary) and expr.op == "*":
            self.rvalue(expr.operand)
            return
        if isinstance(expr, A.Index):
            self.rvalue(expr.base)  # pointer value (decayed arrays included)
            self.rvalue(expr.index)
            self._index_cvt(expr.index)
            self.emit(Op.PTRADD, self.program.register_ptr_elem(_elem_of(expr.base.ctype)), None)
            return
        if isinstance(expr, A.Member):
            stype = self._member_struct(expr)
            if expr.arrow:
                self.rvalue(expr.base)
            else:
                self.address_of(expr.base)
            self.emit(Op.OFFSET, (stype, expr.name), None)
            return
        raise CompileError(f"cannot take the address of {type(expr).__name__}", expr.line)

    def _member_struct(self, expr: A.Member) -> StructType:
        base_t = expr.base.ctype
        if expr.arrow:
            assert isinstance(base_t, PointerType) and isinstance(base_t.target, StructType)
            return base_t.target
        assert isinstance(base_t, StructType)
        return base_t

    def _index_cvt(self, index: A.Expr) -> None:
        """Indices join pointer arithmetic as plain python ints — nothing
        to do, but keep the hook for documentation symmetry."""

    # -- rvalues --------------------------------------------------------------------------

    def rvalue(self, expr: A.Expr) -> None:
        """Push the value of pure expression *expr*."""
        ctype = expr.ctype

        if isinstance(expr, A.IntLit):
            self.emit(Op.PUSH, expr.value, None)
            return
        if isinstance(expr, A.CharLit):
            self.emit(Op.PUSH, expr.value, None)
            return
        if isinstance(expr, A.FloatLit):
            self.emit(Op.PUSH, float(expr.value), None)
            return
        if isinstance(expr, A.Null):
            self.emit(Op.PUSH, 0, None)
            return
        if isinstance(expr, A.StringLit):
            gidx = self.program.intern_string(expr.value)
            self.emit(Op.LEA_G, gidx, None)
            return

        if isinstance(expr, A.Ident):
            scope, idx, declared = self._resolve(expr.name)
            if declared.is_scalar:
                kind = kind_of(declared)
                self.emit(Op.LDL if scope == "local" else Op.LDG, (idx, kind), None)
            else:
                # arrays (decay) and structs (address for member chains)
                self.emit(Op.LEA_L if scope == "local" else Op.LEA_G, idx, None)
            return

        if isinstance(expr, A.Unary):
            op = expr.op
            if op == "&":
                self.address_of(expr.operand)
                return
            if op == "*":
                self.rvalue(expr.operand)
                self._load_object(_elem_of(expr.operand.ctype))
                return
            if op == "!":
                self.rvalue(expr.operand)
                self.emit(Op.LNOT, None, None)
                return
            self.rvalue(expr.operand)
            if op == "-":
                self.emit(Op.NEG, _wrap_spec(ctype), None)
            elif op == "~":
                self.emit(Op.BNOT, _wrap_spec(ctype), None)
            else:
                raise CompileError(f"unary {op!r} survived normalization", expr.line)
            return

        if isinstance(expr, A.Binary):
            self._binary(expr)
            return

        if isinstance(expr, A.Index):
            elem = _elem_of(expr.base.ctype)
            self.rvalue(expr.base)
            self.rvalue(expr.index)
            self.emit(Op.PTRADD, self.program.register_ptr_elem(elem), None)
            self._load_object(elem)
            return

        if isinstance(expr, A.Member):
            stype = self._member_struct(expr)
            if expr.arrow:
                self.rvalue(expr.base)
            else:
                self.address_of(expr.base)
            self.emit(Op.OFFSET, (stype, expr.name), None)
            self._load_object(stype.field_type(expr.name))
            return

        if isinstance(expr, A.Cast):
            self.rvalue(expr.operand)
            self._maybe_cvt(expr.operand.ctype, expr.to)
            return

        if isinstance(expr, A.SizeofType):
            self.emit(Op.PUSH_SIZEOF, expr.of, None)
            return
        if isinstance(expr, A.SizeofExpr):
            self.emit(Op.PUSH_SIZEOF, expr.operand.ctype, None)
            return

        if isinstance(expr, A.Cond):
            self.rvalue(expr.cond)
            jz = self.emit(Op.JZ, None, None)
            self.rvalue(expr.then)
            jend = self.emit(Op.JMP, None, None)
            self._patch(jz, self.here())
            self.rvalue(expr.other)
            self._patch(jend, self.here())
            return

        raise CompileError(
            f"impure expression {type(expr).__name__} survived normalization", expr.line
        )

    def _load_object(self, ctype: CType) -> None:
        """Pop an address; push the value of the object of declared type
        *ctype* (scalars load; arrays/structs keep their address — C
        decay).  Callers must pass the OBJECT type, never the decayed
        rvalue annotation, or array elements would be misread as loads."""
        if ctype is not None and ctype.is_scalar:
            self.emit(Op.LOAD, kind_of(ctype), None)
        # arrays/structs: address already pushed

    _CMP_OPS = {"==": Op.EQ, "!=": Op.NE, "<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE}
    _ARITH_OPS = {
        "+": Op.ADD,
        "-": Op.SUB,
        "*": Op.MUL,
        "/": Op.DIV,
        "%": Op.MOD,
        "&": Op.BAND,
        "|": Op.BOR,
        "^": Op.BXOR,
        "<<": Op.SHL,
        ">>": Op.SHR,
    }

    def _binary(self, expr: A.Binary) -> None:
        op = expr.op
        lt, rt = expr.left.ctype, expr.right.ctype

        if op in ("&&", "||"):
            # pure short-circuit producing 0/1
            self.rvalue(expr.left)
            if op == "&&":
                jshort = self.emit(Op.JZ, None, None)
            else:
                jshort = self.emit(Op.JNZ, None, None)
            self.rvalue(expr.right)
            self.emit(Op.LNOT, None, None)
            self.emit(Op.LNOT, None, None)  # normalize to 0/1
            jend = self.emit(Op.JMP, None, None)
            self._patch(jshort, self.here())
            self.emit(Op.PUSH, 0 if op == "&&" else 1, None)
            self._patch(jend, self.here())
            return

        if op in self._CMP_OPS:
            self.rvalue(expr.left)
            self.rvalue(expr.right)
            self.emit(self._CMP_OPS[op], None, None)
            return

        # pointer arithmetic
        if isinstance(lt, PointerType) and isinstance(rt, PointerType) and op == "-":
            self.rvalue(expr.left)
            self.rvalue(expr.right)
            self.emit(Op.PTRDIFF, self.program.register_ptr_elem(lt.target), None)
            return
        if isinstance(lt, PointerType):
            self.rvalue(expr.left)
            self.rvalue(expr.right)
            opcode = Op.PTRADD if op == "+" else Op.PTRSUB
            self.emit(opcode, self.program.register_ptr_elem(lt.target), None)
            return
        if isinstance(rt, PointerType):  # int + ptr
            self.rvalue(expr.right)
            self.rvalue(expr.left)
            self.emit(Op.PTRADD, self.program.register_ptr_elem(rt.target), None)
            return

        self.rvalue(expr.left)
        self.rvalue(expr.right)
        opcode = self._ARITH_OPS.get(op)
        if opcode is None:
            raise CompileError(f"binary {op!r} survived normalization", expr.line)
        self.emit(opcode, _wrap_spec(expr.ctype), None)


def _elem_of(ctype: CType) -> CType:
    """Pointee of a pointer-or-array-typed base expression."""
    if isinstance(ctype, PointerType):
        return ctype.target
    if isinstance(ctype, ArrayType):
        return ctype.elem
    raise CompileError(f"subscripted value has type {ctype}")


def _wrap_spec(ctype: CType):
    """Neutral wrap annotation: the result kind (resolved per arch)."""
    if isinstance(ctype, PrimType):
        return ctype.kind
    if isinstance(ctype, PointerType):
        return "ptr"
    raise CompileError(f"arithmetic on non-primitive type {ctype}")
