"""The pre-compiler's annotated-source output.

Produces, for a compiled program, the transformed C source the paper's
pre-compiler would hand to a native toolchain:

- every poll-point becomes a label plus a ``MIG_POLL`` macro invocation
  listing that point's *live variables* with the interface call that
  collects each (``Save_pointer`` for pointers, ``Save_variable``
  otherwise) — exactly the four interface routines of §2;
- every annotated function gets a restoration dispatch at entry: when the
  process starts in restore mode, ``switch (__mig_resume_label())``
  restores the live variables and jumps to the recorded label;
- a header comment documents the runtime library contract.

Our VM executes the equivalent IR (POLL instructions + liveness tables);
this text is the *artifact* form of the same transformation, and tests
verify its label/macro structure matches the compiled tables exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clang import cast as A
from repro.clang.ctypes import PointerType, StructType
from repro.transform.emit import CWriter, declarator, emit_struct
from repro.vm.compiler import FuncIR
from repro.vm.program import CompiledProgram, compile_program

__all__ = ["AnnotatedProgram", "annotate_program", "PREAMBLE"]

PREAMBLE = """\
/* ------------------------------------------------------------------ */
/* Migratable format emitted by the pre-compiler.                      */
/*                                                                     */
/* Runtime library contract (MSRM library, linked with the TI table):  */
/*   MIG_POLL(id, saves)      poll for a migration request; on         */
/*                            migration, execute the save list and     */
/*                            transmit the collected state             */
/*   Save_variable(&v)        collect a non-pointer live variable      */
/*   Save_pointer(p)          collect the MSR component reachable      */
/*                            from pointer p (DFS, visited-marking)    */
/*   Restore_variable(&v)     inverse of Save_variable                 */
/*   Restore_pointer()        inverse of Save_pointer; returns the     */
/*                            translated destination address           */
/*   __mig_restoring          nonzero while resuming a migrated        */
/*                            process on this host                     */
/*   __mig_resume_label()     label id of the migration point          */
/* ------------------------------------------------------------------ */
"""


@dataclass
class PollSite:
    """One annotated poll-point."""

    poll_id: int
    function: str
    #: (variable name, is_pointer) in save order
    live: list[tuple[str, bool]] = field(default_factory=list)


@dataclass
class AnnotatedProgram:
    """The pre-compiler's output bundle."""

    program: CompiledProgram
    source: str
    poll_sites: list[PollSite] = field(default_factory=list)

    def sites_in(self, function: str) -> list[PollSite]:
        return [s for s in self.poll_sites if s.function == function]


def _live_saves(prog: CompiledProgram, fir: FuncIR, poll_id: int) -> list[tuple[str, bool]]:
    """(name, is_pointer) for each live variable at *poll_id*."""
    pc = fir.poll_pcs[poll_id]
    live = prog.live_at(prog._func_index[fir.name], pc + 1)
    out: list[tuple[str, bool]] = []
    for var_idx in live:
        var = fir.norm.variables[var_idx]
        out.append((var.name, isinstance(var.ctype, PointerType)))
    return out


def _save_call(name: str, is_pointer: bool) -> str:
    return f"Save_pointer({name})" if is_pointer else f"Save_variable(&{name})"


def _restore_call(name: str, is_pointer: bool) -> str:
    return f"{name} = Restore_pointer();" if is_pointer else f"Restore_variable(&{name});"


def annotate_function(prog: CompiledProgram, fir: FuncIR) -> tuple[str, list[PollSite]]:
    """Emit one function in migratable format."""
    norm = fir.norm
    writer = CWriter()
    sites: list[PollSite] = []

    params = ", ".join(
        declarator(v.ctype, v.name) for v in norm.variables if v.is_param
    ) or "void"
    writer.open(f"{declarator(norm.ret, '')} {fir.name}({params})")

    # flat variable declarations (the normalizer hoisted every local)
    for var in norm.variables:
        if not var.is_param:
            writer.line(declarator(var.ctype, var.name) + ";")

    # restoration dispatch (paper: resume at the recorded migration point)
    if fir.poll_stmts:
        writer.open("if (__mig_restoring)")
        writer.open("switch (__mig_resume_label())")
        for stmt_id, poll_id in sorted(fir.poll_stmts.items(), key=lambda kv: kv[1]):
            live = _live_saves(prog, fir, poll_id)
            writer.line(f"case {poll_id}:")
            writer._level += 1
            for name, is_ptr in live:
                writer.line(_restore_call(name, is_ptr))
            writer.line(f"goto __mig_pp_{poll_id};")
            writer._level -= 1
        writer.close()
        writer.close()

    def hook(stmt: A.Stmt, w: CWriter) -> bool:
        if not isinstance(stmt, A.PollHint):
            return False
        poll_id = fir.poll_stmts.get(stmt.stmt_id)
        if poll_id is None:
            return False
        live = _live_saves(prog, fir, poll_id)
        sites.append(PollSite(poll_id=poll_id, function=fir.name, live=list(live)))
        saves = ", ".join(_save_call(n, p) for n, p in live) or "/* no live locals */"
        w.raw(f"__mig_pp_{poll_id}:")
        w.line(f"MIG_POLL({poll_id}, ({saves}));")
        return True

    for stmt in norm.body:
        writer.stmt(stmt, hook)
    writer.close()
    return writer.getvalue(), sites


def annotate_program(source_or_program) -> AnnotatedProgram:
    """Run the pre-compiler and return the migratable-format source.

    Accepts raw C source (compiled with default options) or an existing
    :class:`CompiledProgram`.
    """
    if isinstance(source_or_program, CompiledProgram):
        prog = source_or_program
    else:
        prog = compile_program(source_or_program)

    writer = CWriter()
    writer.raw(PREAMBLE)

    emitted: set[str] = set()
    for tag, stype in prog.unit.structs.items():
        if isinstance(stype, StructType) and stype.is_complete and tag not in emitted:
            emit_struct(writer, stype)
            emitted.add(tag)
            writer.line()

    for info in prog.globals:
        if info.is_string or info.is_hidden:
            continue
        writer.line(declarator(info.ctype, info.name) + ";")
    writer.line()

    sites: list[PollSite] = []
    parts = [writer.getvalue()]
    for fir in prog.functions:
        text, fsites = annotate_function(prog, fir)
        parts.append(text)
        parts.append("\n")
        sites.extend(fsites)

    return AnnotatedProgram(program=prog, source="".join(parts), poll_sites=sites)
