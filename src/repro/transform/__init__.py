"""The pre-compiler's source-to-source output.

The paper's pre-compiler emits annotated C: label statements and
migration macros at every poll-point, plus restoration jump tables at
function entry.  Our VM executes the equivalent IR directly (POLL
instructions + liveness tables), but the annotated *source* is the
artifact a real C toolchain would compile on every host, so this package
produces it faithfully:

- :mod:`repro.transform.emit` — a C pretty-printer for (normalized) ASTs;
- :mod:`repro.transform.annotate` — inserts ``__mig_pp_<id>:`` labels,
  ``MIG_POLL(id, ...)`` macros listing each poll-point's live variables
  with their ``Save_variable``/``Save_pointer`` calls, and the
  ``switch (__mig_resume_label())`` restoration dispatch.
"""

from repro.transform.emit import CWriter, emit_program, emit_function
from repro.transform.annotate import AnnotatedProgram, annotate_program

__all__ = [
    "CWriter",
    "emit_program",
    "emit_function",
    "AnnotatedProgram",
    "annotate_program",
]
