"""C source pretty-printer.

Emits parseable C from our AST — used by the annotator (whose output is
the pre-compiler deliverable) and by round-trip tests (``parse(emit(x))``
is structurally equal to ``x`` for the supported subset).

Handles both raw parsed ASTs and normalized ones (normalized loops carry
``cond_pre``/``init_stmts``/``step_stmts`` statement lists, which are
printed back into expression positions when trivial or as explicit
statements otherwise).
"""

from __future__ import annotations

from typing import Optional

from repro.clang import cast as A
from repro.clang.ctypes import (
    ArrayType,
    CType,
    FuncType,
    PointerType,
    PrimType,
    StructType,
    VoidType,
)

__all__ = ["CWriter", "emit_program", "emit_function", "declarator", "emit_expr"]


def declarator(ctype: CType, name: str) -> str:
    """Render ``ctype name`` as a C declarator (e.g. ``int *a[5]``)."""
    dims = ""
    while isinstance(ctype, ArrayType):
        dims += f"[{ctype.length}]"
        ctype = ctype.elem
    stars = ""
    while isinstance(ctype, PointerType):
        stars += "*"
        ctype = ctype.target
    base = str(ctype)
    sep = " " if name or stars else ""
    return f"{base}{sep}{stars}{name}{dims}"


# precedence levels (higher binds tighter), mirroring the parser
_PREC = {
    ",": 0, "=": 1, "?:": 2, "||": 3, "&&": 4, "|": 5, "^": 6, "&": 7,
    "==": 8, "!=": 8, "<": 9, "<=": 9, ">": 9, ">=": 9,
    "<<": 10, ">>": 10, "+": 11, "-": 12, "*": 13, "/": 13, "%": 13,
    "unary": 14, "postfix": 15, "primary": 16,
}
_PREC["-"] = 11
_PREC["*"] = 13


def _prec_of(expr: A.Expr) -> int:
    if isinstance(expr, (A.IntLit, A.FloatLit, A.CharLit, A.StringLit, A.Ident, A.Null)):
        return _PREC["primary"]
    if isinstance(expr, (A.Call, A.Index, A.Member)):
        return _PREC["postfix"]
    if isinstance(expr, (A.Unary, A.Cast, A.SizeofType, A.SizeofExpr)):
        return _PREC["unary"]
    if isinstance(expr, A.Binary):
        return _PREC.get(expr.op, 11)
    if isinstance(expr, A.Cond):
        return _PREC["?:"]
    if isinstance(expr, A.Assign):
        return _PREC["="]
    return 0


def emit_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing as needed."""
    text = _emit_expr_inner(expr)
    if _prec_of(expr) < parent_prec:
        return f"({text})"
    return text


def _escape_c(text: str) -> str:
    out = []
    table = {"\n": "\\n", "\t": "\\t", "\r": "\\r", '"': '\\"', "\\": "\\\\", "\0": "\\0"}
    for ch in text:
        out.append(table.get(ch, ch))
    return "".join(out)


def _emit_expr_inner(expr: A.Expr) -> str:
    if isinstance(expr, A.IntLit):
        suffix = ("u" if expr.unsigned else "") + ("l" if expr.long else "")
        return f"{expr.value}{suffix}"
    if isinstance(expr, A.FloatLit):
        text = repr(float(expr.value))
        if "e" not in text and "." not in text and "inf" not in text and "nan" not in text:
            text += ".0"
        return text + ("f" if expr.single else "")
    if isinstance(expr, A.CharLit):
        ch = chr(expr.value)
        table = {"\n": "\\n", "\t": "\\t", "'": "\\'", "\\": "\\\\", "\0": "\\0"}
        if ch in table:
            return f"'{table[ch]}'"
        if 32 <= expr.value < 127:
            return f"'{ch}'"
        return f"'\\x{expr.value:02x}'"
    if isinstance(expr, A.StringLit):
        return f'"{_escape_c(expr.value)}"'
    if isinstance(expr, A.Null):
        return "NULL"
    if isinstance(expr, A.Ident):
        return expr.name
    if isinstance(expr, A.Unary):
        prec = _PREC["unary"]
        if expr.op in ("p++", "p--"):
            return emit_expr(expr.operand, _PREC["postfix"]) + expr.op[1:]
        return expr.op + emit_expr(expr.operand, prec)
    if isinstance(expr, A.Binary):
        prec = _prec_of(expr)
        left = emit_expr(expr.left, prec)
        right = emit_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, A.Assign):
        target = emit_expr(expr.target, _PREC["unary"])
        value = emit_expr(expr.value, _PREC["="])
        return f"{target} {expr.op}= {value}"
    if isinstance(expr, A.Call):
        args = ", ".join(emit_expr(a, _PREC["="]) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, A.Index):
        return f"{emit_expr(expr.base, _PREC['postfix'])}[{emit_expr(expr.index)}]"
    if isinstance(expr, A.Member):
        op = "->" if expr.arrow else "."
        return f"{emit_expr(expr.base, _PREC['postfix'])}{op}{expr.name}"
    if isinstance(expr, A.Cast):
        return f"({declarator(expr.to, '')}) {emit_expr(expr.operand, _PREC['unary'])}"
    if isinstance(expr, A.SizeofType):
        return f"sizeof({declarator(expr.of, '')})"
    if isinstance(expr, A.SizeofExpr):
        return f"sizeof {emit_expr(expr.operand, _PREC['unary'])}"
    if isinstance(expr, A.Cond):
        return (
            f"{emit_expr(expr.cond, _PREC['||'])} ? {emit_expr(expr.then)}"
            f" : {emit_expr(expr.other, _PREC['?:'])}"
        )
    raise TypeError(f"cannot emit {type(expr).__name__}")


class CWriter:
    """Indentation-aware C text builder."""

    def __init__(self, indent: str = "    ") -> None:
        self._lines: list[str] = []
        self._indent = indent
        self._level = 0

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append(self._indent * self._level + text)
        else:
            self._lines.append("")

    def raw(self, text: str) -> None:
        self._lines.append(text)

    def open(self, text: str) -> None:
        self.line(text + " {")
        self._level += 1

    def close(self, suffix: str = "") -> None:
        self._level -= 1
        self.line("}" + suffix)

    def getvalue(self) -> str:
        return "\n".join(self._lines) + "\n"

    # -- statements -------------------------------------------------------------

    def body(self, stmt: A.Stmt, hook=None) -> None:
        """Emit a statement that already sits inside printed braces —
        blocks are flattened so re-parsing does not grow nesting."""
        if isinstance(stmt, A.Block):
            for s in stmt.body:
                self.stmt(s, hook)
        else:
            self.stmt(stmt, hook)

    def stmt(self, stmt: A.Stmt, hook=None) -> None:
        """Emit one statement; *hook(stmt, writer) -> bool* may intercept
        (the annotator uses it for PollHint nodes)."""
        if hook is not None and hook(stmt, self):
            return

        if isinstance(stmt, A.Block):
            self.open("")
            for s in stmt.body:
                self.stmt(s, hook)
            self.close()
        elif isinstance(stmt, A.ExprStmt):
            self.line(emit_expr(stmt.expr) + ";")
        elif isinstance(stmt, A.DeclStmt):
            for d in stmt.decls:
                init = ""
                if d.init is not None:
                    init = " = " + emit_expr(d.init, _PREC["="])
                elif d.init_list is not None:
                    init = " = {" + ", ".join(emit_expr(e) for e in d.init_list) + "}"
                self.line(declarator(d.ctype, d.name) + init + ";")
        elif isinstance(stmt, A.If):
            self.open(f"if ({emit_expr(stmt.cond)})")
            self.body(stmt.then, hook)
            if stmt.other is not None:
                self.close(" else {")
                self._level += 1
                self.body(stmt.other, hook)
                self.close()
            else:
                self.close()
        elif isinstance(stmt, A.While):
            if stmt.cond_pre:
                # re-evaluated side effects: emit as an explicit loop shape
                self.open("while (1)")
                for s in stmt.cond_pre:
                    self.stmt(s, hook)
                self.line(f"if (!({emit_expr(stmt.cond)})) break;")
                self.body(stmt.body, hook)
                self.close()
            else:
                self.open(f"while ({emit_expr(stmt.cond)})")
                self.body(stmt.body, hook)
                self.close()
        elif isinstance(stmt, A.DoWhile):
            self.open("do")
            self.body(stmt.body, hook)
            for s in stmt.cond_pre:
                self.stmt(s, hook)
            self.close(f" while ({emit_expr(stmt.cond)});")
        elif isinstance(stmt, A.For):
            init = emit_expr(stmt.init) if stmt.init is not None else ""
            cond = emit_expr(stmt.cond) if stmt.cond is not None else ""
            step = emit_expr(stmt.step) if stmt.step is not None else ""
            if stmt.init_stmts or stmt.cond_pre or stmt.step_stmts:
                # normalized form: statement lists around an explicit loop
                for s in stmt.init_stmts:
                    self.stmt(s, hook)
                self.open("for (;;)")
                for s in stmt.cond_pre:
                    self.stmt(s, hook)
                if stmt.cond is not None:
                    self.line(f"if (!({emit_expr(stmt.cond)})) break;")
                self.body(stmt.body, hook)
                for s in stmt.step_stmts:
                    self.stmt(s, hook)
                self.close()
            else:
                self.open(f"for ({init}; {cond}; {step})")
                self.body(stmt.body, hook)
                self.close()
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self.line(f"return {emit_expr(stmt.value)};")
            else:
                self.line("return;")
        elif isinstance(stmt, A.Break):
            self.line("break;")
        elif isinstance(stmt, A.Continue):
            self.line("continue;")
        elif isinstance(stmt, A.Switch):
            self.open(f"switch ({emit_expr(stmt.cond)})")
            for case in stmt.cases:
                if case.value is None:
                    self.line("default:")
                else:
                    self.line(f"case {case.value}:")
                self._level += 1
                for s in case.body:
                    self.stmt(s, hook)
                self._level -= 1
            self.close()
        elif isinstance(stmt, A.PollHint):
            self.line("migrate_here();")
        else:
            raise TypeError(f"cannot emit statement {type(stmt).__name__}")


def emit_struct(writer: CWriter, stype: StructType) -> None:
    writer.open(f"struct {stype.tag}")
    for fname, ftype in stype.fields:
        writer.line(declarator(ftype, fname) + ";")
    writer.close(";")


def emit_function(func: A.FuncDef) -> str:
    """Render one (parsed) function definition back to C."""
    writer = CWriter()
    params = ", ".join(declarator(p.ctype, p.name) for p in func.params) or "void"
    writer.open(f"{declarator(func.ret, '')} {func.name}({params})")
    for s in func.body.body:
        writer.stmt(s)
    writer.close()
    return writer.getvalue()


def emit_program(unit: A.TranslationUnit) -> str:
    """Render a whole translation unit back to C source."""
    writer = CWriter()
    emitted: set[str] = set()
    for tag, stype in unit.structs.items():
        if isinstance(stype, StructType) and stype.is_complete and tag not in emitted:
            emit_struct(writer, stype)
            emitted.add(tag)
            writer.line()
    for gvar in unit.globals:
        init = ""
        if gvar.init is not None:
            init = " = " + emit_expr(gvar.init)
        elif gvar.init_list is not None:
            init = " = {" + ", ".join(emit_expr(e) for e in gvar.init_list) + "}"
        writer.line(declarator(gvar.ctype, gvar.name) + init + ";")
    writer.line()
    for func in unit.functions:
        writer.raw(emit_function(func))
        writer.line()
    return writer.getvalue()
