"""repro — Data Collection and Restoration for Heterogeneous Process Migration.

A complete reproduction of Chanchio & Sun (IPPS 2001): the MSR memory
model, MSRLT lookup table, TI table, the ``Save_pointer`` /
``Restore_pointer`` collection/restoration library, a pre-compiler for a
migration-safe C subset, and a simulated heterogeneous process-migration
environment (DEC 5000/120, SPARC 20, Ultra 5, and 64-bit hosts).

Quickstart::

    import repro

    prog = repro.compile_program(open("prog.c").read())
    cluster = repro.Cluster()
    dec = cluster.add_host("dec", repro.DEC5000)
    sparc = cluster.add_host("sparc", repro.SPARC20)
    cluster.connect(dec, sparc, repro.ETHERNET_10M)

    sched = repro.Scheduler(cluster)
    proc = sched.spawn(prog, dec)
    sched.request_migration(proc, sparc)      # fires at the next poll-point
    result = sched.run(proc)                  # runs, migrates, resumes
    print(result.stdout, result.migrations[0])

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction of every table and figure.
"""

from repro.arch.machine import (
    ALPHA,
    ARCH_PRESETS,
    DEC5000,
    Endian,
    MachineArch,
    SPARC20,
    ULTRA5,
    X86,
    X86_64,
)
from repro.analysis.pollpoints import PollStrategy
from repro.clang.parser import ParseError, parse
from repro.clang.unsafe import MigrationSafetyError, UnsafeFeature, check_migration_safety
from repro.migration.checkpoint import (
    Checkpoint,
    checkpoint,
    checkpoint_to_file,
    restart,
    restart_from_file,
    run_with_checkpoints,
)
from repro.migration.engine import (
    DEFAULT_CHUNK_SIZE,
    MigrationEngine,
    collect_state,
    collect_state_chunks,
    restore_state,
    restore_state_stream,
)
from repro.migration.scheduler import Cluster, Host, Scheduler, SchedulerResult
from repro.migration.stats import MigrationStats
from repro.migration.transport import (
    Channel,
    ETHERNET_10M,
    ETHERNET_100M,
    GIGABIT,
    Link,
    LOOPBACK,
)
from repro.msr.model import MSRGraph, build_msr_graph
from repro.msr.msrlt import MSRLT, BlockKind, MemoryBlock
from repro.transform.annotate import AnnotatedProgram, annotate_program
from repro.vm.process import Process, ProcessExit
from repro.vm.program import CompiledProgram, compile_program
from repro.workloads import (
    bitonic_source,
    linpack_source,
    matmul_source,
    nbody_source,
    test_pointer_source,
)

__version__ = "1.0.0"

__all__ = [
    # architectures
    "ALPHA",
    "ARCH_PRESETS",
    "DEC5000",
    "Endian",
    "MachineArch",
    "SPARC20",
    "ULTRA5",
    "X86",
    "X86_64",
    # front end / pre-compiler
    "ParseError",
    "parse",
    "PollStrategy",
    "compile_program",
    "CompiledProgram",
    "annotate_program",
    "AnnotatedProgram",
    "check_migration_safety",
    "MigrationSafetyError",
    "UnsafeFeature",
    # runtime
    "Process",
    "ProcessExit",
    "MSRLT",
    "MemoryBlock",
    "BlockKind",
    "MSRGraph",
    "build_msr_graph",
    # migration environment
    "MigrationEngine",
    "DEFAULT_CHUNK_SIZE",
    "collect_state",
    "collect_state_chunks",
    "restore_state",
    "restore_state_stream",
    "Cluster",
    "Host",
    "Scheduler",
    "SchedulerResult",
    "MigrationStats",
    "Channel",
    "Link",
    "Checkpoint",
    "checkpoint",
    "checkpoint_to_file",
    "restart",
    "restart_from_file",
    "run_with_checkpoints",
    "ETHERNET_10M",
    "ETHERNET_100M",
    "GIGABIT",
    "LOOPBACK",
    # workloads
    "bitonic_source",
    "linpack_source",
    "matmul_source",
    "nbody_source",
    "test_pointer_source",
    "__version__",
]
