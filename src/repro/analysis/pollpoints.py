"""Poll-point placement strategies.

The paper inserts poll-points automatically (loop locations, function
bodies) and also lets the user pick locations explicitly
(``migrate_here();`` in our front end).  §4.3 observes that placement is
the dominant overhead factor: "the overhead could be high if poll-points
are placed in a kernel function which performs only few operations but
being invoked so many times" and "in a practical situation, there is no
need to insert poll-points inside of a small kernel".

Strategies (applied to the *normalized* AST, before IR generation):

- ``USER``        — only explicit ``migrate_here();`` hints;
- ``LOOPS``       — hints + the top of every loop body in functions that
  are *not* small kernels (the paper's recommended placement);
- ``LOOPS_ALL``   — hints + every loop body top, including small kernels
  (used by the §4.3 overhead experiment to demonstrate the bad case);
- ``EVERY_STMT``  — a poll before every statement (worst case, ablation).

A function is heuristically a *small kernel* when its body contains no
loops and fewer than ``SMALL_KERNEL_STMTS`` statements — the cheap callee
the paper warns about polls being placed into.
"""

from __future__ import annotations

import enum

from repro.clang import cast as A
from repro.vm.normalize import NormFunc

__all__ = ["PollStrategy", "insert_poll_points", "SMALL_KERNEL_STMTS"]

#: threshold below which a loop-free function counts as a small kernel
SMALL_KERNEL_STMTS = 8


class PollStrategy(str, enum.Enum):
    USER = "user"
    LOOPS = "loops"
    LOOPS_ALL = "loops-all"
    EVERY_STMT = "every-stmt"


def _count_stmts(stmts: list[A.Stmt]) -> int:
    n = 0
    for s in stmts:
        n += 1
        if isinstance(s, A.Block):
            n += _count_stmts(s.body)
        elif isinstance(s, A.If):
            n += _count_stmts([s.then])
            if s.other is not None:
                n += _count_stmts([s.other])
        elif isinstance(s, (A.While, A.DoWhile, A.For)):
            n += _count_stmts([s.body])
        elif isinstance(s, A.Switch):
            for c in s.cases:
                n += _count_stmts(c.body)
    return n


def _has_loop(stmts: list[A.Stmt]) -> bool:
    for s in stmts:
        if isinstance(s, (A.While, A.DoWhile, A.For)):
            return True
        if isinstance(s, A.Block) and _has_loop(s.body):
            return True
        if isinstance(s, A.If):
            if _has_loop([s.then]) or (s.other is not None and _has_loop([s.other])):
                return True
        if isinstance(s, A.Switch) and any(_has_loop(c.body) for c in s.cases):
            return True
    return False


def is_small_kernel(func: NormFunc) -> bool:
    """The paper's 'small kernel' heuristic (§4.3)."""
    return not _has_loop(func.body) and _count_stmts(func.body) < SMALL_KERNEL_STMTS


def insert_poll_points(func: NormFunc, strategy: PollStrategy) -> int:
    """Insert :class:`~repro.clang.cast.PollHint` nodes per *strategy*.

    Mutates ``func.body`` in place; returns the number of automatic
    hints inserted (explicit user hints are always kept).
    """
    if strategy == PollStrategy.USER:
        return 0

    if strategy == PollStrategy.EVERY_STMT:
        return _poll_every_stmt(func.body)

    if strategy == PollStrategy.LOOPS and is_small_kernel(func):
        return 0

    return _poll_loops(func.body)


def _prepend_poll(body_stmt: A.Stmt) -> A.Stmt:
    hint = A.PollHint(line=body_stmt.line)
    if isinstance(body_stmt, A.Block):
        body_stmt.body.insert(0, hint)
        return body_stmt
    return A.Block(body=[hint, body_stmt], line=body_stmt.line)


def _poll_loops(stmts: list[A.Stmt]) -> int:
    count = 0
    for s in stmts:
        if isinstance(s, (A.While, A.DoWhile, A.For)):
            s.body = _prepend_poll(s.body)
            count += 1
            count += _poll_loops([s.body])
        elif isinstance(s, A.Block):
            count += _poll_loops(s.body)
        elif isinstance(s, A.If):
            count += _poll_loops([s.then])
            if s.other is not None:
                count += _poll_loops([s.other])
        elif isinstance(s, A.Switch):
            for c in s.cases:
                count += _poll_loops(c.body)
    return count


def _poll_every_stmt(stmts: list[A.Stmt]) -> int:
    count = 0
    i = 0
    while i < len(stmts):
        s = stmts[i]
        if not isinstance(s, A.PollHint):
            stmts.insert(i, A.PollHint(line=s.line))
            count += 1
            i += 1
        if isinstance(s, A.Block):
            count += _poll_every_stmt(s.body)
        elif isinstance(s, A.If):
            s.then = _ensure_block(s.then)
            count += _poll_every_stmt(s.then.body)
            if s.other is not None:
                s.other = _ensure_block(s.other)
                count += _poll_every_stmt(s.other.body)
        elif isinstance(s, (A.While, A.DoWhile, A.For)):
            s.body = _ensure_block(s.body)
            count += _poll_every_stmt(s.body.body)
        elif isinstance(s, A.Switch):
            for c in s.cases:
                count += _poll_every_stmt(c.body)
        i += 1
    return count


def _ensure_block(stmt: A.Stmt) -> A.Block:
    if isinstance(stmt, A.Block):
        return stmt
    return A.Block(body=[stmt], line=stmt.line)
