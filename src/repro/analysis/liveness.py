"""Backward live-variable analysis on function IR.

The paper's pre-compiler computes, at every poll-point, the set of *live
variables* "whose data values are needed for computation beyond the
poll-point"; only those are collected during a migration.  We run the
classic backward dataflow at the IR level, where the compiler's fused
variable-access opcodes give exact use/def information:

- ``LDL (var, kind)``  — use
- ``STL (var, kind)``  — def
- ``LEA_L var``        — the variable's *address* escapes; it may be read
  or written through pointers we cannot track, so it is conservatively
  treated as live everywhere in the function (this also covers arrays and
  structs, which are always accessed through their address).

Globals are not part of this analysis: they are unconditionally part of
the collected memory state (the paper's example saves global ``first``
from ``main`` the same way).

The result maps every *resume pc* — the instruction after each ``POLL``
and after each ``CALL`` — to the ordered tuple of live variable indices.
Those are exactly the records the collection library writes for a frame,
and the restoration library reads back (both sides compute the same
tables from the same program).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import build_blocks
from repro.vm.ir import Instr, Op

__all__ = ["LivenessResult", "compute_liveness"]


@dataclass
class LivenessResult:
    """Per-function liveness summary."""

    #: variables whose address escapes (always treated as live)
    address_taken: frozenset[int]
    #: live-in variable set per instruction pc
    live_in: list[frozenset[int]]
    #: resume pc -> ordered live variable indices (address-taken included);
    #: keyed for every pc following a POLL or CALL instruction
    resume_live: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def live_at_resume(self, resume_pc: int) -> tuple[int, ...]:
        """Ordered live set at *resume_pc* (a pc after a POLL/CALL)."""
        return self.resume_live[resume_pc]


def _use_def(instr: Instr) -> tuple[int | None, int | None]:
    """(use var, def var) of one instruction (at most one each)."""
    op, a, _b = instr
    if op == Op.LDL:
        return a[0], None
    if op == Op.STL:
        return None, a[0]
    return None, None


def compute_liveness(code: list[Instr], nvars: int, save_all: bool = False) -> LivenessResult:
    """Run the analysis over one function's neutral *code*.

    ``save_all=True`` is the ablation mode: every variable is considered
    live at every resume point (what a migration system without liveness
    analysis would have to do — benchmarked in E6/ablations).
    """
    address_taken = frozenset(
        instr[1] for instr in code if instr[0] == Op.LEA_L
    )

    if save_all:
        everything = frozenset(range(nvars))
        live_in = [everything] * len(code)
        result = LivenessResult(address_taken=everything, live_in=live_in)
        _fill_resume(result, code, nvars, everything)
        return result

    blocks = build_blocks(code)
    order = sorted(blocks)  # iterate in reverse pc order for fast convergence

    # block-level use/def summaries
    use_b: dict[int, set[int]] = {}
    def_b: dict[int, set[int]] = {}
    for start, block in blocks.items():
        uses: set[int] = set()
        defs: set[int] = set()
        for pc in range(block.start, block.end):
            u, d = _use_def(code[pc])
            if u is not None and u not in defs:
                uses.add(u)
            if d is not None:
                defs.add(d)
        use_b[start] = uses
        def_b[start] = defs

    live_out: dict[int, set[int]] = {s: set() for s in blocks}
    live_in_b: dict[int, set[int]] = {s: set() for s in blocks}
    changed = True
    while changed:
        changed = False
        for start in reversed(order):
            block = blocks[start]
            out: set[int] = set()
            for s in block.succ:
                out |= live_in_b[s]
            inn = use_b[start] | (out - def_b[start])
            if out != live_out[start] or inn != live_in_b[start]:
                live_out[start] = out
                live_in_b[start] = inn
                changed = True

    # per-instruction live-in by walking each block backwards
    live_in: list[frozenset[int]] = [frozenset()] * len(code)
    for start, block in blocks.items():
        live = set(live_out[start])
        for pc in range(block.end - 1, block.start - 1, -1):
            u, d = _use_def(code[pc])
            if d is not None:
                live.discard(d)
            if u is not None:
                live.add(u)
            live_in[pc] = frozenset(live)

    result = LivenessResult(address_taken=address_taken, live_in=live_in)
    _fill_resume(result, code, nvars, address_taken)
    return result


def _fill_resume(
    result: LivenessResult, code: list[Instr], nvars: int, always: frozenset[int]
) -> None:
    for pc, instr in enumerate(code):
        if instr[0] in (Op.POLL, Op.CALL) and pc + 1 < len(code):
            live = set(result.live_in[pc + 1]) | set(always)
            result.resume_live[pc + 1] = tuple(sorted(v for v in live if v < nvars))
