"""Static analyses used by the pre-compiler.

- :mod:`repro.analysis.cfg` — basic-block construction over function IR;
- :mod:`repro.analysis.liveness` — backward live-variable dataflow; the
  result tells the collection library exactly which locals must be saved
  at each poll-point and call site (the paper: "the pre-compiler defines
  live variables whose data values are needed for computation beyond the
  poll-point");
- :mod:`repro.analysis.pollpoints` — poll-point placement strategies
  (the paper §4.3: placement drives runtime overhead).
"""

from repro.analysis.cfg import BasicBlock, build_blocks, successors
from repro.analysis.liveness import LivenessResult, compute_liveness
from repro.analysis.pollpoints import PollStrategy, insert_poll_points

__all__ = [
    "BasicBlock",
    "build_blocks",
    "successors",
    "LivenessResult",
    "compute_liveness",
    "PollStrategy",
    "insert_poll_points",
]
