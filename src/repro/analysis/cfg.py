"""Control-flow graph over function IR.

Works on the *neutral* instruction list of one function (see
:mod:`repro.vm.ir`).  Used by the liveness analysis and by tests that
assert structural properties of compiled code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.ir import Instr, Op

__all__ = ["successors", "BasicBlock", "build_blocks", "block_of"]


def successors(code: list[Instr], pc: int) -> tuple[int, ...]:
    """Successor pcs of the instruction at *pc*."""
    op, a, _b = code[pc]
    if op == Op.JMP:
        return (a,)
    if op in (Op.JZ, Op.JNZ):
        return (a, pc + 1)
    if op in (Op.RET, Op.HALT):
        return ()
    return (pc + 1,)


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    start: int
    end: int  # exclusive
    succ: tuple[int, ...] = ()  # start pcs of successor blocks
    pred: list[int] = field(default_factory=list)

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


def build_blocks(code: list[Instr]) -> dict[int, BasicBlock]:
    """Partition *code* into basic blocks keyed by start pc."""
    if not code:
        return {}
    leaders = {0}
    for pc, instr in enumerate(code):
        op = instr[0]
        if op in (Op.JMP, Op.JZ, Op.JNZ):
            leaders.add(instr[1])
            if pc + 1 < len(code):
                leaders.add(pc + 1)
        elif op in (Op.RET, Op.HALT):
            if pc + 1 < len(code):
                leaders.add(pc + 1)
    ordered = sorted(leaders)
    blocks: dict[int, BasicBlock] = {}
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else len(code)
        blocks[start] = BasicBlock(start=start, end=end)
    for block in blocks.values():
        last = block.end - 1
        block.succ = tuple(s for s in successors(code, last) if s in blocks)
        # successors that jump into the middle of a block cannot happen:
        # every jump target is a leader by construction
    for block in blocks.values():
        for s in block.succ:
            blocks[s].pred.append(block.start)
    return blocks


def block_of(blocks: dict[int, BasicBlock], pc: int) -> BasicBlock:
    """The block containing *pc*."""
    # blocks is small; linear scan keyed on sorted starts
    best = None
    for start, block in blocks.items():
        if start <= pc < block.end:
            if best is None or start > best.start:
                best = block
    if best is None:
        raise KeyError(f"pc {pc} not inside any block")
    return best
